open Machine

let irange st lo hi = lo + Random.State.int st (hi - lo + 1)

let sp_pre off = { Insn.base = Reg.SP; off; mode = Insn.Pre }
let sp_post off = { Insn.base = Reg.SP; off; mode = Insn.Post }

let prologue st =
  (* fp/lr plus a random run of callee-saved pairs, Listing 7 style. *)
  let npairs = irange st 0 4 in
  let saves = ref [ Insn.Stp (Reg.fp, Reg.lr, sp_pre (-16)) ] in
  for k = 0 to npairs - 1 do
    saves := Insn.Stp (Reg.x (19 + (2 * k)), Reg.x (20 + (2 * k)), sp_pre (-16)) :: !saves
  done;
  (List.rev !saves, npairs)

let epilogue npairs =
  let restores = ref [] in
  for k = npairs - 1 downto 0 do
    restores := Insn.Ldp (Reg.x (19 + (2 * k)), Reg.x (20 + (2 * k)), sp_post 16) :: !restores
  done;
  List.rev (Insn.Ldp (Reg.fp, Reg.lr, sp_post 16) :: !restores)

let arg_shuffle st =
  (* Calling-convention moves from callee-saved homes into x0..x3. *)
  let n = irange st 1 4 in
  List.init n (fun i -> Insn.mov_r (Reg.x i) (Reg.x (19 + irange st 0 7)))

let body_math ?(max_len = 10) st =
  let n = irange st 2 max_len in
  List.init n (fun _ ->
      let d = Reg.x (9 + irange st 0 6) in
      match irange st 0 3 with
      | 0 -> Insn.Binop (Insn.Add, d, Reg.x (9 + irange st 0 6), Insn.Imm (irange st 1 4095))
      | 1 -> Insn.Binop (Insn.Eor, d, Reg.x (9 + irange st 0 6), Insn.Rop (Reg.x (9 + irange st 0 6)))
      | 2 -> Insn.mov_i d (irange st 0 65535)
      | _ -> Insn.Binop (Insn.Lsl, d, Reg.x (9 + irange st 0 6), Insn.Imm (irange st 1 31)))

(* A dispatch chain: cmp / b.eq to per-case blocks that call distinct
   targets (clang's visitor pattern). *)
let dispatch_blocks st ~fname ~callees ~ncases ~epilogue_insns =
  let case_label k = Printf.sprintf "case%d" k in
  let test_label k = Printf.sprintf "test%d" k in
  let exit_block =
    Block.make ~label:"fexit" epilogue_insns Block.Ret
  in
  let tests =
    List.init ncases (fun k ->
        let next = if k = ncases - 1 then "fexit" else test_label (k + 1) in
        Block.make ~label:(test_label k)
          [ Insn.Cmp (Reg.x 19, Insn.Imm k) ]
          (Block.Bcond (Cond.Eq, case_label k, next)))
  in
  let cases =
    List.init ncases (fun k ->
        let callee = List.nth callees (irange st 0 (List.length callees - 1)) in
        Block.make ~label:(case_label k)
          (arg_shuffle st @ [ Insn.Bl callee ])
          (Block.B "fexit"))
  in
  ignore fname;
  tests @ cases @ [ exit_block ]

let clang_like ?(seed = 1234) ?(functions = 1200) () =
  let st = Random.State.make [| seed |] in
  let callees = List.init 60 (fun i -> Printf.sprintf "clang_helper_%d" i) in
  let helpers =
    List.map
      (fun name ->
        Mfunc.make ~from_module:"clang" ~name
          [ Block.make ~label:"entry" (body_math st) Block.Ret ])
      callees
  in
  let funcs =
    List.init functions (fun i ->
        let name = Printf.sprintf "clang_fn_%d" i in
        let pro, npairs = prologue st in
        let epi = epilogue npairs in
        match irange st 0 2 with
        | 0 ->
          (* Dispatch-style function. *)
          let ncases = irange st 3 10 in
          let entry =
            Block.make ~label:"entry"
              (pro @ [ Insn.mov_r (Reg.x 19) (Reg.x 0) ] @ body_math ~max_len:4 st)
              (Block.B "test0")
          in
          Mfunc.make ~from_module:"clang" ~name
            (entry :: dispatch_blocks st ~fname:name ~callees ~ncases ~epilogue_insns:epi)
        | 1 ->
          (* Straight-line with a few calls. *)
          let ncalls = irange st 2 6 in
          let body =
            List.concat
              (List.init ncalls (fun _ ->
                   arg_shuffle st
                   @ [ Insn.Bl (List.nth callees (irange st 0 59)) ]
                   @ body_math ~max_len:4 st))
          in
          Mfunc.make ~from_module:"clang" ~name
            [ Block.make ~label:"entry" (pro @ body @ epi) Block.Ret ]
        | _ ->
          (* Leaf accessor-ish function. *)
          Mfunc.make ~from_module:"clang" ~name
            [
              Block.make ~label:"entry"
                ([ Insn.Ldr (Reg.x 9, { Insn.base = Reg.x 0; off = 8 * irange st 0 7; mode = Insn.Offset }) ]
                @ body_math ~max_len:4 st
                @ [ Insn.mov_r (Reg.x 0) (Reg.x 9) ])
                Block.Ret;
            ])
  in
  Program.make ~externs:[] (helpers @ funcs)

let kernel_like ?(seed = 4321) ?(functions = 1500) () =
  let st = Random.State.make [| seed |] in
  let callees = List.init 40 (fun i -> Printf.sprintf "k_subr_%d" i) in
  let helpers =
    List.map
      (fun name ->
        Mfunc.make ~from_module:"kernel" ~name
          [ Block.make ~label:"entry" (body_math st) Block.Ret ])
      callees
  in
  (* The stack-guard epilogue the paper singles out: reload the canary,
     compare, and branch to the failure handler. *)
  let guard_check =
    [
      Insn.Adr (Reg.x 16, "__stack_chk_guard");
      Insn.Ldr (Reg.x 16, { Insn.base = Reg.x 16; off = 0; mode = Insn.Offset });
      Insn.Ldr (Reg.x 17, { Insn.base = Reg.SP; off = 8; mode = Insn.Offset });
      Insn.Cmp (Reg.x 16, Insn.Rop (Reg.x 17));
    ]
  in
  let funcs =
    List.init functions (fun i ->
        let name = Printf.sprintf "k_fn_%d" i in
        let pro, npairs = prologue st in
        let epi = epilogue npairs in
        let ncalls = irange st 0 3 in
        let body =
          List.concat
            (List.init ncalls (fun _ ->
                 arg_shuffle st
                 @ [ Insn.Bl (List.nth callees (irange st 0 39)) ]
                 @ body_math ~max_len:18 st))
          @ body_math ~max_len:18 st
        in
        let main_block =
          Block.make ~label:"entry" (pro @ body @ guard_check)
            (Block.Bcond (Cond.Ne, "stack_fail", "out"))
        in
        let fail_block =
          Block.make ~label:"stack_fail" [ Insn.Bl "__stack_chk_fail" ] (Block.B "out")
        in
        let out_block = Block.make ~label:"out" epi Block.Ret in
        Mfunc.make ~from_module:"kernel" ~name [ main_block; fail_block; out_block ])
  in
  Program.make
    ~data:[ Dataobj.make ~from_module:"kernel" ~name:"__stack_chk_guard" [ Dataobj.Word 0xdead ] ]
    ~externs:[ "__stack_chk_fail" ]
    (helpers @ funcs)
