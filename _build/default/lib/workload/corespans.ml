type cell = {
  device : string;
  os : string;
  ratio : float;
}

type span_report = {
  span : string;
  cells : cell list;
  base_seconds : float;
  opt_seconds : float;
}

let cycles_of program ~device ~os ~span ~arg =
  let config =
    {
      Perfsim.Interp.default_config with
      device;
      os;
      model_perf = true;
      max_steps = 500_000_000;
    }
  in
  match Perfsim.Interp.run ~config ~args:[ arg ] ~entry:span program with
  | Ok r -> Ok (float_of_int r.Perfsim.Interp.cycles)
  | Error e -> Error (Perfsim.Interp.error_to_string e)

let run_span ?(samples = 3) ?(arg = 1) ~base ~opt ~device ~os span =
  let rec collect i accb acco =
    if i >= samples then Ok (List.rev accb, List.rev acco)
    else
      (* Vary the span argument slightly, like differing user sessions. *)
      let a = arg + (i mod 2) in
      match cycles_of base ~device ~os ~span ~arg:a with
      | Error e -> Error e
      | Ok cb -> (
        match cycles_of opt ~device ~os ~span ~arg:a with
        | Error e -> Error e
        | Ok co -> collect (i + 1) (cb :: accb) (co :: acco))
  in
  match collect 0 [] [] with
  | Error e -> Error e
  | Ok (bs, os_) -> Ok (Repro_stats.Percentile.p50 bs, Repro_stats.Percentile.p50 os_)

let heatmap ?(samples = 3) ~base ~opt ~spans () =
  let rec spans_loop acc = function
    | [] -> Ok (List.rev acc)
    | span :: rest -> (
      let cells = ref [] and errors = ref None in
      let base_total = ref 0. and opt_total = ref 0. in
      List.iter
        (fun (device : Perfsim.Device.t) ->
          List.iter
            (fun (os : Perfsim.Device.os) ->
              if !errors = None then
                match run_span ~samples ~base ~opt ~device ~os span with
                | Error e -> errors := Some e
                | Ok (b, o) ->
                  base_total := !base_total +. b;
                  opt_total := !opt_total +. o;
                  cells :=
                    { device = device.Perfsim.Device.name; os = os.Perfsim.Device.os_name; ratio = o /. b }
                    :: !cells)
            Perfsim.Device.oses)
        Perfsim.Device.devices;
      match !errors with
      | Some e -> Error e
      | None ->
        let ncells = float_of_int (List.length !cells) in
        spans_loop
          ({
             span;
             cells = List.rev !cells;
             base_seconds = !base_total /. ncells /. 1e6;
             opt_seconds = !opt_total /. ncells /. 1e6;
           }
          :: acc)
          rest)
  in
  spans_loop [] spans

let geomean_ratio reports =
  let ratios =
    List.concat_map (fun r -> List.map (fun c -> c.ratio) r.cells) reports
  in
  Repro_stats.Percentile.geomean ratios
