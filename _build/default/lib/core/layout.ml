open Machine

let static_callers (p : Program.t) =
  let callers : (string, (string * int) list) Hashtbl.t = Hashtbl.create 256 in
  let note callee caller =
    let prev = Option.value ~default:[] (Hashtbl.find_opt callers callee) in
    let prev =
      match List.assoc_opt caller prev with
      | Some n -> (caller, n + 1) :: List.remove_assoc caller prev
      | None -> (caller, 1) :: prev
    in
    Hashtbl.replace callers callee prev
  in
  List.iter
    (fun (f : Mfunc.t) ->
      List.iter
        (fun (b : Block.t) ->
          Array.iter
            (fun i -> match i with Insn.Bl t -> note t f.name | _ -> ())
            b.body;
          match b.term with
          | Block.Tail_call t -> note t f.name
          | _ -> ())
        f.blocks)
    p.funcs;
  callers

let optimize (p : Program.t) =
  let callers = static_callers p in
  (* Primary caller of each outlined function. *)
  let home : (string, string) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (f : Mfunc.t) ->
      if f.is_outlined then
        match Hashtbl.find_opt callers f.name with
        | Some ((_ :: _) as cs) ->
          let best, _ =
            List.fold_left
              (fun (bn, bc) (n, c) -> if c > bc then (n, c) else (bn, bc))
              ("", 0) cs
          in
          if best <> "" then Hashtbl.replace home f.name best
        | Some [] | None -> ())
    p.funcs;
  (* An outlined function's home may itself be outlined; chase to a
     non-outlined anchor (cycles impossible: calls go to earlier rounds). *)
  let by_name = Hashtbl.create 256 in
  List.iter (fun (f : Mfunc.t) -> Hashtbl.replace by_name f.name f) p.funcs;
  let rec anchor name depth =
    if depth > 16 then name
    else
      match Hashtbl.find_opt by_name name with
      | Some f when f.Mfunc.is_outlined -> (
        match Hashtbl.find_opt home name with
        | Some h -> anchor h (depth + 1)
        | None -> name)
      | Some _ | None -> name
  in
  (* Group outlined functions under their anchors. *)
  let attached : (string, Mfunc.t list) Hashtbl.t = Hashtbl.create 64 in
  let detached = ref [] in
  List.iter
    (fun (f : Mfunc.t) ->
      if f.is_outlined then begin
        let a = anchor f.name 0 in
        if a <> f.name && Hashtbl.mem by_name a && not (Hashtbl.find by_name a).Mfunc.is_outlined
        then
          let prev = Option.value ~default:[] (Hashtbl.find_opt attached a) in
          Hashtbl.replace attached a (f :: prev)
        else detached := f :: !detached
      end)
    p.funcs;
  let funcs =
    List.concat_map
      (fun (f : Mfunc.t) ->
        if f.is_outlined then []
        else
          f :: List.rev (Option.value ~default:[] (Hashtbl.find_opt attached f.name)))
      p.funcs
    @ List.rev !detached
  in
  Program.replace_funcs p funcs
