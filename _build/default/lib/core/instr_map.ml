type desc =
  | Insn of Machine.Insn.t
  | Ret
  | Unique

type t = {
  shared : (Machine.Insn.t, int) Hashtbl.t;
  back : (int, desc) Hashtbl.t;
  mutable next : int;
}

let create () =
  let t = { shared = Hashtbl.create 1024; back = Hashtbl.create 1024; next = 1 } in
  Hashtbl.replace t.back 0 Ret;
  t

let ret_symbol (_ : t) = 0

let fresh t desc =
  let id = t.next in
  t.next <- id + 1;
  Hashtbl.replace t.back id desc;
  id

let symbol_of_insn t insn =
  match Legality.classify insn with
  | Legality.Illegal -> fresh t Unique
  | Legality.Legal -> (
    match Hashtbl.find_opt t.shared insn with
    | Some id -> id
    | None ->
      let id = fresh t (Insn insn) in
      Hashtbl.replace t.shared insn id;
      id)

let describe t id =
  match Hashtbl.find_opt t.back id with
  | Some d -> d
  | None -> invalid_arg "Instr_map.describe: unknown symbol"
