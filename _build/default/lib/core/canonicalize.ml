open Machine

let is_commutative = function
  | Insn.Add | Insn.Mul | Insn.And | Insn.Orr | Insn.Eor -> true
  | Insn.Sub | Insn.Sdiv | Insn.Lsl | Insn.Lsr | Insn.Asr -> false

let canonicalize_insn count i =
  match i with
  | Insn.Binop (op, d, a, Insn.Rop b)
    when is_commutative op && Reg.index b < Reg.index a ->
    incr count;
    Insn.Binop (op, d, b, Insn.Rop a)
  | other -> other

let run (p : Program.t) =
  let count = ref 0 in
  let funcs =
    List.map
      (fun (f : Mfunc.t) ->
        Mfunc.map_blocks
          (fun (b : Block.t) ->
            { b with body = Array.map (canonicalize_insn count) b.body })
          f)
      p.funcs
  in
  (Program.replace_funcs p funcs, !count)
