type verdict =
  | Legal
  | Illegal

let classify i =
  if Machine.Insn.touches_lr i && not (Machine.Insn.is_call i) then Illegal
  else Legal
