type pattern_stat = {
  rank : int;
  frequency : int;
  length : int;
  saving : int;
  ends_with_call : bool;
  ends_with_ret : bool;
  sample : Machine.Insn.t list;
}

type report = {
  patterns : pattern_stat array;
  total_insns : int;
  total_code_bytes : int;
  candidates_total : int;
  call_or_ret_fraction : float;
  longest : pattern_stat option;
}

let analyze p =
  let cands = Outliner.enumerate p in
  let profitable =
    List.filter_map
      (fun c ->
        let saving = Cost_model.benefit c in
        if saving >= 1 then
          let ends_with_ret = c.Candidate.strategy = Candidate.Ends_with_ret in
          let ends_with_call =
            (not ends_with_ret)
            &&
            match List.rev c.Candidate.insns with
            | last :: _ -> Machine.Insn.is_call last
            | [] -> false
          in
          Some
            {
              rank = 0;
              frequency = List.length c.Candidate.sites;
              length = c.Candidate.length;
              saving;
              ends_with_call;
              ends_with_ret;
              sample = c.Candidate.insns;
            }
        else None)
      cands
  in
  let sorted =
    List.sort
      (fun a b ->
        match Int.compare b.frequency a.frequency with
        | 0 -> Int.compare b.length a.length
        | c -> c)
      profitable
  in
  let patterns = Array.of_list sorted in
  Array.iteri (fun i s -> patterns.(i) <- { s with rank = i + 1 }) patterns;
  let candidates_total =
    Array.fold_left (fun acc s -> acc + s.frequency) 0 patterns
  in
  let call_ret_candidates =
    Array.fold_left
      (fun acc s ->
        if s.ends_with_call || s.ends_with_ret then acc + s.frequency else acc)
      0 patterns
  in
  let longest =
    Array.fold_left
      (fun acc s ->
        match acc with
        | None -> Some s
        | Some best -> if s.length > best.length then Some s else acc)
      None patterns
  in
  {
    patterns;
    total_insns = Machine.Program.insn_count p;
    total_code_bytes = Machine.Program.code_size_bytes p;
    candidates_total;
    call_or_ret_fraction =
      (if candidates_total = 0 then 0.
       else float_of_int call_ret_candidates /. float_of_int candidates_total);
    longest;
  }

let length_histogram r =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun s ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt tbl s.length) in
      Hashtbl.replace tbl s.length (prev + s.frequency))
    r.patterns;
  Hashtbl.fold (fun len n acc -> (len, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let cumulative_savings r =
  let by_saving =
    let copy = Array.copy r.patterns in
    Array.sort (fun a b -> Int.compare b.saving a.saving) copy;
    copy
  in
  let acc = ref 0 in
  Array.mapi
    (fun i s ->
      acc := !acc + s.saving;
      (i + 1, !acc))
    by_saving

let patterns_needed_for r fraction =
  let curve = cumulative_savings r in
  let n = Array.length curve in
  if n = 0 then 0
  else begin
    let total = snd curve.(n - 1) in
    let target = fraction *. float_of_int total in
    let rec find i =
      if i >= n then n
      else if float_of_int (snd curve.(i)) >= target then i + 1
      else find (i + 1)
    in
    find 0
  end
