(** The binary-analysis statistics pass of §IV: log every profitable
    repeating pattern with its frequency, length and potential saving.
    This is the data source for Figures 5–8 of the paper. *)

type pattern_stat = {
  rank : int;              (** 1 = most frequently repeating *)
  frequency : int;         (** number of candidates (occurrences) *)
  length : int;            (** sequence length in instructions (symbols) *)
  saving : int;            (** bytes saved if this pattern alone is outlined *)
  ends_with_call : bool;
  ends_with_ret : bool;
  sample : Machine.Insn.t list;  (** the pattern body, for inspection *)
}

type report = {
  patterns : pattern_stat array;
      (** profitable patterns, sorted by frequency (descending), ranked *)
  total_insns : int;
  total_code_bytes : int;
  candidates_total : int;   (** sum of frequencies *)
  call_or_ret_fraction : float;
      (** fraction of candidates whose pattern ends with a call or return
          — 67% in the UberRider app *)
  longest : pattern_stat option;
}

val analyze : Machine.Program.t -> report

val length_histogram : report -> (int * int) list
(** (sequence length, number of candidates) pairs, ascending by length —
    Figure 8. *)

val cumulative_savings : report -> (int * int) array
(** Prefix sums of per-pattern savings with patterns taken in descending
    saving order: element [i] is [(i+1, bytes saved by outlining the i+1
    most profitable patterns)] — Figure 7. *)

val patterns_needed_for : report -> float -> int
(** Number of most-profitable patterns required to reach the given fraction
    of the total possible saving (e.g. [0.9] — the paper reports > 10^2). *)
