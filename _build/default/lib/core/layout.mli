(** Layout placement for outlined code — the paper's future-work item (3)
    in §VIII, implemented and measured.

    This pass re-orders functions so each outlined function sits
    immediately after the function containing the most static calls to it
    (chasing chains of outlined-calling-outlined to a concrete anchor).
    Layout is pure re-ordering: code bytes and behaviour are unchanged
    (property-tested), only addresses move.

    The measured outcome is a {e negative result}: because outlined
    functions are shared across the whole program, caller-affinity
    placement scatters them over the image and the simulator shows iTLB
    misses exploding, whereas LLVM's dense appended region behaves like a
    small, hot page set.  The pipeline therefore defaults to [`Append];
    this pass exists to make that comparison reproducible (see the
    [ablate] bench experiment). *)

val static_callers : Machine.Program.t -> (string, (string * int) list) Hashtbl.t
(** For each function, its callers with static call counts. *)

val optimize : Machine.Program.t -> Machine.Program.t
(** Re-order functions for caller affinity; non-outlined functions keep
    their relative order. *)
