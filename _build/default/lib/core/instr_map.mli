(** Mapping between machine instructions and suffix-tree symbols.

    Identical legal instructions share a symbol; every illegal instruction
    receives a fresh symbol so it can never participate in a repeat (the
    standard MachineOutliner trick).  A distinguished symbol stands for a
    block-terminating [ret]. *)

type t

val create : unit -> t
val symbol_of_insn : t -> Machine.Insn.t -> int
val ret_symbol : t -> int

type desc =
  | Insn of Machine.Insn.t
  | Ret
  | Unique

val describe : t -> int -> desc
