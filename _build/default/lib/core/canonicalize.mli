(** Semantic canonicalization before outlining — the paper's future-work
    item (1) in §VIII ("semantic equivalence of machine-code sequences"),
    in its simplest profitable form.

    Two instructions can compute the same value yet differ syntactically;
    the suffix tree only matches exact symbols.  This pass rewrites
    commutative data-processing instructions ([add], [mul], [and], [orr],
    [eor]) with two register sources into a canonical operand order (lower
    register index first), so sequences that differ only in that order fall
    into the same pattern.  Register moves spelled as [ORR dst, xzr, src]
    are untouched (they are already canonical [Mov]s in our IR).

    Semantics are preserved instruction-for-instruction; the differential
    suite checks it. *)

val run : Machine.Program.t -> Machine.Program.t * int
(** Returns the program and the number of instructions rewritten. *)
