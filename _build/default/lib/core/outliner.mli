(** One round of whole-unit machine outlining: discover repeated sequences
    with a suffix tree, score them with the cost model, pick greedily by
    immediate benefit (LLVM's heuristic, §II-C), and rewrite. *)

type options = {
  scope_name : string;
      (** infix for outlined function names; pass the module name when
          outlining per module so clones from different modules get
          distinct symbols, and [""] for whole-program outlining *)
  round : int;        (** round number, included in generated names *)
  min_length : int;   (** minimum pattern length in symbols (default 2) *)
  allow_save_lr : bool;  (** permit the LR-spilling call strategy *)
  allow_thunk : bool;    (** permit tail-call thunks for call-ending patterns *)
  allow_ret : bool;      (** permit outlining patterns that end with [ret] *)
}

val default_options : options

type round_stats = {
  sequences_outlined : int;  (** candidate occurrences replaced *)
  functions_created : int;
  outlined_bytes : int;      (** total size of the created functions *)
  bytes_saved : int;         (** net size reduction achieved this round *)
}

val enumerate : ?min_length:int -> ?options:options -> Machine.Program.t -> Candidate.t list
(** All legal candidates with their sites and strategies, self-overlaps
    pruned, unsorted, not yet filtered for profitability.  Shared with the
    statistics pass of §IV. *)

val run_round : options -> Machine.Program.t -> Machine.Program.t * round_stats
