lib/core/cost_model.ml: Candidate List
