lib/core/repeat.mli: Machine Outliner
