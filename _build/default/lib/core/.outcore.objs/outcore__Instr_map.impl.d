lib/core/instr_map.ml: Hashtbl Legality Machine
