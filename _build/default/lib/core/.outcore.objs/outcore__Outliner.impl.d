lib/core/outliner.ml: Array Block Candidate Cost_model Hashtbl Insn Instr_map Int List Liveness Machine Mfunc Option Printf Program Reg Sufftree
