lib/core/outliner.mli: Candidate Machine
