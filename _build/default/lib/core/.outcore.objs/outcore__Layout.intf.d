lib/core/layout.mli: Hashtbl Machine
