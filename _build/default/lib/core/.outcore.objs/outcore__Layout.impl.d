lib/core/layout.ml: Array Block Hashtbl Insn List Machine Mfunc Option Program
