lib/core/candidate.mli: Format Machine
