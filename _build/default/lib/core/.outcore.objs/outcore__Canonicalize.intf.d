lib/core/canonicalize.mli: Machine
