lib/core/analysis.mli: Machine
