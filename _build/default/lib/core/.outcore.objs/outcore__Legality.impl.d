lib/core/legality.ml: Machine
