lib/core/candidate.ml: Format List Machine
