lib/core/repeat.ml: List Outliner
