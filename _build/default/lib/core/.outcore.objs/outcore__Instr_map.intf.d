lib/core/instr_map.mli: Machine
