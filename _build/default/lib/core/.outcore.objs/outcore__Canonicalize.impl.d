lib/core/canonicalize.ml: Array Block Insn List Machine Mfunc Program Reg
