lib/core/legality.mli: Machine
