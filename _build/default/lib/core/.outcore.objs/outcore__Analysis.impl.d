lib/core/analysis.ml: Array Candidate Cost_model Hashtbl Int List Machine Option Outliner
