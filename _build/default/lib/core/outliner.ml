open Machine

type options = {
  scope_name : string;
  round : int;
  min_length : int;
  allow_save_lr : bool;
  allow_thunk : bool;
  allow_ret : bool;
}

let default_options =
  {
    scope_name = "";
    round = 1;
    min_length = 2;
    allow_save_lr = true;
    allow_thunk = true;
    allow_ret = true;
  }

type round_stats = {
  sequences_outlined : int;
  functions_created : int;
  outlined_bytes : int;
  bytes_saved : int;
}

(* Metadata for each sequence fed to the suffix tree. *)
type seq_meta = {
  sm_func : Mfunc.t;
  sm_block : Block.t;
  sm_has_ret : bool;
}

let build_sequences imap (p : Program.t) =
  let seqs = ref [] and metas = ref [] in
  List.iter
    (fun (f : Mfunc.t) ->
      if not f.no_outline then
        List.iter
          (fun (b : Block.t) ->
            let has_ret = b.term = Block.Ret in
            let n = Array.length b.body in
            let len = if has_ret then n + 1 else n in
            if len >= 1 then begin
              let arr = Array.make len 0 in
              for i = 0 to n - 1 do
                arr.(i) <- Instr_map.symbol_of_insn imap b.body.(i)
              done;
              if has_ret then arr.(n) <- Instr_map.ret_symbol imap;
              seqs := arr :: !seqs;
              metas := { sm_func = f; sm_block = b; sm_has_ret = has_ret } :: !metas
            end)
          f.blocks)
    p.funcs;
  (List.rev !seqs, Array.of_list (List.rev !metas))

(* Drop occurrences that overlap an earlier-kept occurrence of the same
   pattern within the same sequence. *)
let prune_self_overlaps occs len =
  let sorted =
    List.sort
      (fun (a : Sufftree.Suffix_tree.occurrence) b ->
        match Int.compare a.seq b.seq with 0 -> Int.compare a.pos b.pos | c -> c)
      occs
  in
  let rec go last_seq last_end = function
    | [] -> []
    | (o : Sufftree.Suffix_tree.occurrence) :: rest ->
      if o.seq = last_seq && o.pos < last_end then go last_seq last_end rest
      else o :: go o.seq (o.pos + len) rest
  in
  go (-1) 0 sorted

(* Outlined functions whose bodies are frame fragments (unbalanced SP
   changes, e.g. half a prologue) are legal and valuable to outline — but a
   call to one is *not* SP-neutral, unlike a call to any ABI-conforming
   function.  Strategies that spill LR around such a call would reload from
   the wrong slot.  Compute, transitively, which outlined functions a call
   must be treated as SP-modifying. *)
let sp_unsafe_callees (p : Program.t) =
  let unsafe : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let outlined =
    List.filter (fun (f : Mfunc.t) -> f.is_outlined) p.funcs
  in
  let body_calls (f : Mfunc.t) =
    List.concat_map
      (fun (b : Block.t) ->
        let calls =
          Array.to_list b.body
          |> List.filter_map (function Insn.Bl t -> Some t | _ -> None)
        in
        match b.term with
        | Block.Tail_call t -> t :: calls
        | _ -> calls)
      f.blocks
  in
  let touches (f : Mfunc.t) =
    List.exists
      (fun (b : Block.t) -> Array.exists Insn.touches_sp b.body)
      f.blocks
  in
  List.iter (fun (f : Mfunc.t) -> if touches f then Hashtbl.replace unsafe f.name ()) outlined;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Mfunc.t) ->
        if not (Hashtbl.mem unsafe f.name) then
          if List.exists (Hashtbl.mem unsafe) (body_calls f) then begin
            Hashtbl.replace unsafe f.name ();
            changed := true
          end)
      outlined
  done;
  fun name -> Hashtbl.mem unsafe name

let candidate_of_repeat options ~callee_sp_unsafe metas liveness_of
    (r : Sufftree.Suffix_tree.repeat) : Candidate.t option =
  match prune_self_overlaps r.occs r.length with
  | [] | [ _ ] -> None
  | (first :: _) as occs ->
    let meta = metas.(first.seq) in
    let body = meta.sm_block.Block.body in
    let with_ret =
      meta.sm_has_ret && first.pos + r.length = Array.length body + 1
    in
    let insn_len = if with_ret then r.length - 1 else r.length in
    if insn_len = 0 then None
    else begin
      let insns =
        Array.to_list (Array.sub body first.pos insn_len)
      in
      let strategy =
        if with_ret then
          if options.allow_ret then Some Candidate.Ends_with_ret else None
        else
          match List.rev insns with
          | Insn.Bl _ :: _ when options.allow_thunk -> Some Candidate.Thunk
          | _ -> Some Candidate.Plain_call
      in
      match strategy with
      | None -> None
      | Some strategy ->
        (* SP-relevant instructions: direct SP uses, plus calls to outlined
           frame fragments, which are not SP-neutral callees. *)
        let insn_touches_sp i =
          Insn.touches_sp i
          || (match i with Insn.Bl t -> callee_sp_unsafe t | _ -> false)
        in
        (* The final call of a thunk becomes a tail branch, so it is exempt
           from both the interior-call and the SP checks. *)
        let checked_insns =
          match (strategy, List.rev insns) with
          | Candidate.Thunk, Insn.Bl _ :: rev_prefix -> List.rev rev_prefix
          | (Candidate.Thunk | Candidate.Ends_with_ret | Candidate.Plain_call), _
            ->
            insns
        in
        let touches_sp = List.exists insn_touches_sp checked_insns in
        (* Calls before the end of the body clobber LR inside the outlined
           function, so it needs its own LR spill — impossible if the body
           is SP-relevant. *)
        let needs_lr_frame = List.exists Insn.is_call checked_insns in
        if needs_lr_frame && touches_sp then None
        else
        let site_of (o : Sufftree.Suffix_tree.occurrence) =
          let m = metas.(o.seq) in
          let call =
            match strategy with
            | Candidate.Ends_with_ret | Candidate.Thunk -> Some Candidate.Call_free
            | Candidate.Plain_call ->
              let lv = liveness_of m.sm_func in
              if Liveness.lr_live_before lv ~label:m.sm_block.Block.label o.pos
              then
                if options.allow_save_lr && not touches_sp then
                  Some Candidate.Call_save_lr
                else None
              else Some Candidate.Call_free
          in
          match call with
          | None -> None
          | Some call ->
            Some
              {
                Candidate.func = m.sm_func.Mfunc.name;
                block = m.sm_block.Block.label;
                start = o.pos;
                len = r.length;
                with_ret;
                call;
              }
        in
        let sites = List.filter_map site_of occs in
        if List.length sites < 2 then None
        else Some { Candidate.insns; length = r.length; strategy; sites; needs_lr_frame }
    end

let enumerate ?min_length ?(options = default_options) (p : Program.t) =
  let min_length =
    match min_length with Some m -> m | None -> options.min_length
  in
  let imap = Instr_map.create () in
  let seqs, metas = build_sequences imap p in
  if seqs = [] then []
  else begin
    let liveness_cache : (string, Liveness.t) Hashtbl.t = Hashtbl.create 64 in
    let liveness_of (f : Mfunc.t) =
      match Hashtbl.find_opt liveness_cache f.name with
      | Some lv -> lv
      | None ->
        let lv = Liveness.compute f in
        Hashtbl.replace liveness_cache f.name lv;
        lv
    in
    let tree = Sufftree.Suffix_tree.build seqs in
    let reps = Sufftree.Suffix_tree.repeats ~min_length tree in
    let callee_sp_unsafe = sp_unsafe_callees p in
    ignore imap;
    List.filter_map
      (candidate_of_repeat options ~callee_sp_unsafe metas liveness_of)
      reps
  end

(* --- Rewriting --------------------------------------------------------- *)

type plan_entry = {
  pe_site : Candidate.site;
  pe_name : string;  (** outlined function to call *)
}

let save_lr_pre = Insn.Str (Reg.lr, { Insn.base = Reg.SP; off = -16; mode = Insn.Pre })
let restore_lr_post = Insn.Ldr (Reg.lr, { Insn.base = Reg.SP; off = 16; mode = Insn.Post })

let rewrite_block entries (b : Block.t) =
  (* entries: disjoint, any order. *)
  let mine =
    List.sort
      (fun a b -> Int.compare a.pe_site.Candidate.start b.pe_site.Candidate.start)
      entries
  in
  let body = b.body in
  let out = ref [] in
  let term = ref b.term in
  let pos = ref 0 in
  List.iter
    (fun e ->
      let s = e.pe_site in
      for i = !pos to s.Candidate.start - 1 do
        out := body.(i) :: !out
      done;
      if s.with_ret then begin
        (* Consumes the ret terminator: branch to the outlined function. *)
        term := Block.Tail_call e.pe_name;
        pos := Array.length body
      end
      else begin
        (match s.call with
        | Candidate.Call_free -> out := Insn.Bl e.pe_name :: !out
        | Candidate.Call_save_lr ->
          out := restore_lr_post :: Insn.Bl e.pe_name :: save_lr_pre :: !out);
        pos := s.start + s.len
      end)
    mine;
  for i = !pos to Array.length body - 1 do
    out := body.(i) :: !out
  done;
  { b with body = Array.of_list (List.rev !out); term = !term }

let make_outlined_function ~name ~from_module (c : Candidate.t) =
  (* When the body performs interior calls, the outlined function must
     preserve the caller's return address across them. *)
  let frame body =
    if c.needs_lr_frame then (save_lr_pre :: body) @ [ restore_lr_post ]
    else body
  in
  let blocks =
    match c.strategy with
    | Candidate.Ends_with_ret ->
      [ Block.make ~label:"entry" (frame c.insns) Block.Ret ]
    | Candidate.Thunk -> (
      match List.rev c.insns with
      | Insn.Bl target :: rev_prefix ->
        [
          Block.make ~label:"entry"
            (frame (List.rev rev_prefix))
            (Block.Tail_call target);
        ]
      | _ -> assert false)
    | Candidate.Plain_call ->
      [ Block.make ~label:"entry" (frame c.insns) Block.Ret ]
  in
  Mfunc.make ~from_module ~is_outlined:true ~name blocks

let run_round options (p : Program.t) =
  let cands = enumerate ~options p in
  let scored =
    List.filter_map
      (fun c ->
        let b = Cost_model.benefit c in
        if b >= 1 then Some (b, c) else None)
      cands
  in
  let sorted = List.sort (fun (a, _) (b, _) -> Int.compare b a) scored in
  (* Occupancy map: (func, block) -> consumed slots (body length + 1 for the
     terminator slot used by ret-ending patterns). *)
  let consumed : (string * string, bool array) Hashtbl.t = Hashtbl.create 256 in
  let block_len = Hashtbl.create 256 in
  List.iter
    (fun (f : Mfunc.t) ->
      List.iter
        (fun (b : Block.t) ->
          Hashtbl.replace block_len (f.name, b.Block.label)
            (Array.length b.Block.body))
        f.blocks)
    p.funcs;
  let slots key =
    match Hashtbl.find_opt consumed key with
    | Some a -> a
    | None ->
      let n = Hashtbl.find block_len key in
      let a = Array.make (n + 1) false in
      Hashtbl.replace consumed key a;
      a
  in
  let site_free (s : Candidate.site) =
    let a = slots (s.func, s.block) in
    let hi = if s.with_ret then s.start + s.len - 1 else s.start + s.len - 1 in
    let free = ref true in
    for i = s.start to hi do
      if a.(i) then free := false
    done;
    !free
  in
  let site_take (s : Candidate.site) =
    let a = slots (s.func, s.block) in
    for i = s.start to s.start + s.len - 1 do
      a.(i) <- true
    done
  in
  let plans : (string * string, plan_entry list) Hashtbl.t = Hashtbl.create 256 in
  let new_funcs = ref [] in
  let idx = ref 0 in
  let stats =
    ref { sequences_outlined = 0; functions_created = 0; outlined_bytes = 0; bytes_saved = 0 }
  in
  List.iter
    (fun ((_, c) : int * Candidate.t) ->
      let sites = List.filter site_free c.sites in
      let c' = { c with sites } in
      if Cost_model.profitable c' then begin
        let name =
          let scope = if options.scope_name = "" then "" else options.scope_name ^ "_" in
          Printf.sprintf "OUTLINED_FUNCTION_%s%d_%d" scope options.round !idx
        in
        incr idx;
        List.iter site_take sites;
        List.iter
          (fun (s : Candidate.site) ->
            let key = (s.func, s.block) in
            let prev = Option.value ~default:[] (Hashtbl.find_opt plans key) in
            Hashtbl.replace plans key ({ pe_site = s; pe_name = name } :: prev))
          sites;
        let from_module =
          if options.scope_name = "" then "outlined" else options.scope_name
        in
        let f = make_outlined_function ~name ~from_module c' in
        new_funcs := f :: !new_funcs;
        stats :=
          {
            sequences_outlined = !stats.sequences_outlined + List.length sites;
            functions_created = !stats.functions_created + 1;
            outlined_bytes = !stats.outlined_bytes + Mfunc.size_bytes f;
            bytes_saved = !stats.bytes_saved + Cost_model.benefit c';
          }
      end)
    sorted;
  let rewrite_func (f : Mfunc.t) =
    Mfunc.map_blocks
      (fun b ->
        match Hashtbl.find_opt plans (f.name, b.Block.label) with
        | None | Some [] -> b
        | Some entries -> rewrite_block entries b)
      f
  in
  let p' =
    Program.replace_funcs p (List.map rewrite_func p.funcs @ List.rev !new_funcs)
  in
  (p', !stats)
