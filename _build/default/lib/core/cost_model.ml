let outlined_function_bytes strategy ~needs_lr_frame ~pattern_len =
  let frame = if needs_lr_frame then 8 else 0 in
  match (strategy : Candidate.strategy) with
  | Ends_with_ret | Thunk -> (4 * pattern_len) + frame
  | Plain_call -> (4 * (pattern_len + 1)) + frame

let benefit (c : Candidate.t) =
  let inline_bytes = Candidate.pattern_bytes c in
  let saved_per_site =
    List.map
      (fun (s : Candidate.site) ->
        inline_bytes - Candidate.site_cost_bytes s.call)
      c.sites
  in
  List.fold_left ( + ) 0 saved_per_site
  - outlined_function_bytes c.strategy ~needs_lr_frame:c.needs_lr_frame
      ~pattern_len:c.length

let profitable (c : Candidate.t) = List.length c.sites >= 2 && benefit c >= 1
