open Machine

type symbol_kind =
  | Text
  | Data
  | Extern

type layout = {
  addresses : (string, int) Hashtbl.t;
  kinds : (string, symbol_kind) Hashtbl.t;
  text_base : int;
  text_size : int;
  data_base : int;
  data_size : int;
  image_overhead : int;
}

let text_base_default = 0x1_0000
let image_overhead_default = 16_384 (* headers + load commands stand-in *)

let align n a = (n + a - 1) / a * a

let link ?(text_base = text_base_default)
    ?(image_overhead = image_overhead_default) (p : Program.t) =
  let addresses = Hashtbl.create 1024 in
  let kinds = Hashtbl.create 1024 in
  let cursor = ref text_base in
  List.iter
    (fun (f : Mfunc.t) ->
      Hashtbl.replace addresses f.name !cursor;
      Hashtbl.replace kinds f.name Text;
      cursor := !cursor + Mfunc.size_bytes f)
    p.funcs;
  let text_size = !cursor - text_base in
  (* Segments are page-aligned, as in Mach-O (16 KiB pages on iOS). *)
  let data_base = align !cursor 16384 in
  cursor := data_base;
  List.iter
    (fun (d : Dataobj.t) ->
      Hashtbl.replace addresses d.name !cursor;
      Hashtbl.replace kinds d.name Data;
      cursor := !cursor + align (Dataobj.size_bytes d) 8)
    p.data;
  let data_size = !cursor - data_base in
  (* Externs live far above the image; spacing keeps them distinct. *)
  let extern_base = 0x7000_0000 in
  List.iteri
    (fun i e ->
      if not (Hashtbl.mem addresses e) then begin
        Hashtbl.replace addresses e (extern_base + (i * 16));
        Hashtbl.replace kinds e Extern
      end)
    p.externs;
  { addresses; kinds; text_base; text_size; data_base; data_size; image_overhead }

let binary_size l = l.text_size + l.data_size + l.image_overhead
let address_of l s = Hashtbl.find l.addresses s

let duplicate_function_bodies (p : Program.t) =
  (* Key: printed body with the function name erased (labels are local). *)
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun (f : Mfunc.t) ->
      let key =
        Format.asprintf "%a"
          (fun ppf () ->
            List.iter
              (fun (b : Block.t) ->
                Format.fprintf ppf "%s:" b.label;
                Array.iter (fun i -> Format.fprintf ppf "%a;" Insn.pp i) b.body;
                Format.fprintf ppf "%a|" Block.pp_terminator b.term)
              f.blocks)
          ()
      in
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (f :: prev))
    p.funcs;
  Hashtbl.fold
    (fun _ fs acc ->
      match fs with
      | [] | [ _ ] -> acc
      | f :: _ -> (List.length fs, Mfunc.size_bytes f) :: acc)
    tbl []
