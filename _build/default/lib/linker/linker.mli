(** The system-linker stand-in: lay out text and data, resolve symbols to
    addresses, and account for binary size the way §VII-A does (binary =
    code section + data section + fixed image overhead). *)

type symbol_kind =
  | Text
  | Data
  | Extern

type layout = {
  addresses : (string, int) Hashtbl.t;   (** symbol -> virtual address *)
  kinds : (string, symbol_kind) Hashtbl.t;
  text_base : int;
  text_size : int;
  data_base : int;
  data_size : int;
  image_overhead : int;   (** headers, load commands, linkedit stand-in *)
}

val text_base_default : int
val image_overhead_default : int

val link : ?text_base:int -> ?image_overhead:int -> Machine.Program.t -> layout
(** Functions are placed consecutively in program order, 4-byte aligned
    (they already are); data objects consecutively after text, 8-byte
    aligned.  Extern symbols receive distinct high addresses so indirect
    calls to them can be recognized. *)

val binary_size : layout -> int
(** [text_size + data_size + image_overhead]. *)

val address_of : layout -> string -> int
(** Raises [Not_found] for undefined symbols. *)

val duplicate_function_bodies : Machine.Program.t -> (int * int) list
(** Groups of functions with byte-identical bodies: returns
    [(group_size, bytes_per_body)] for each group with two or more members.
    Used to show how per-module outlining leaves clones behind (§V-A). *)
