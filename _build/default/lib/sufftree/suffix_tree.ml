type node = {
  mutable start : int;          (* start of the edge label leading here *)
  mutable stop : int;           (* exclusive end; [max_int] while a leaf grows *)
  children : (int, node) Hashtbl.t;
  mutable slink : node option;
  mutable suffix_index : int;   (* for leaves: start of the suffix; -1 otherwise *)
}

type t = {
  text : int array;             (* concatenation with unique negative sentinels *)
  root : node;
  seq_of_pos : int array;       (* global position -> sequence index *)
  seq_start : int array;        (* sequence index -> global start position *)
  seq_lens : int array;
}

type occurrence = { seq : int; pos : int }
type repeat = { length : int; occs : occurrence list }

let new_node ~start ~stop =
  { start; stop; children = Hashtbl.create 4; slink = None; suffix_index = -1 }

let edge_length n ~pos =
  (* Current length of the edge into [n], while position [pos] has been read. *)
  min n.stop (pos + 1) - n.start

(* Ukkonen's online construction over the full concatenated text. *)
let ukkonen text =
  let n = Array.length text in
  let root = new_node ~start:(-1) ~stop:(-1) in
  let active_node = ref root in
  let active_edge = ref 0 in
  let active_length = ref 0 in
  let remainder = ref 0 in
  for i = 0 to n - 1 do
    let last_new : node option ref = ref None in
    remainder := !remainder + 1;
    let continue = ref true in
    while !continue && !remainder > 0 do
      if !active_length = 0 then active_edge := i;
      match Hashtbl.find_opt !active_node.children text.(!active_edge) with
      | None ->
        let leaf = new_node ~start:i ~stop:max_int in
        Hashtbl.replace !active_node.children text.(!active_edge) leaf;
        (match !last_new with
        | Some nd ->
          nd.slink <- Some !active_node;
          last_new := None
        | None -> ());
        decr remainder;
        if !active_node == root && !active_length > 0 then begin
          decr active_length;
          active_edge := i - !remainder + 1
        end
        else if not (!active_node == root) then
          active_node := (match !active_node.slink with Some s -> s | None -> root)
      | Some next ->
        let el = edge_length next ~pos:i in
        if !active_length >= el then begin
          (* Walk down. *)
          active_node := next;
          active_edge := !active_edge + el;
          active_length := !active_length - el
        end
        else if text.(next.start + !active_length) = text.(i) then begin
          (* Symbol already present: rule 3, stop this phase. *)
          (match !last_new with
          | Some nd ->
            nd.slink <- Some !active_node;
            last_new := None
          | None -> ());
          incr active_length;
          continue := false
        end
        else begin
          (* Split the edge. *)
          let split = new_node ~start:next.start ~stop:(next.start + !active_length) in
          Hashtbl.replace !active_node.children text.(!active_edge) split;
          let leaf = new_node ~start:i ~stop:max_int in
          Hashtbl.replace split.children text.(i) leaf;
          next.start <- next.start + !active_length;
          Hashtbl.replace split.children text.(next.start) next;
          (match !last_new with
          | Some nd -> nd.slink <- Some split
          | None -> ());
          last_new := Some split;
          decr remainder;
          if !active_node == root && !active_length > 0 then begin
            decr active_length;
            active_edge := i - !remainder + 1
          end
          else if not (!active_node == root) then
            active_node := (match !active_node.slink with Some s -> s | None -> root)
        end
    done
  done;
  (* Close leaves and assign suffix indices via an explicit-stack DFS. *)
  let stack = ref [ (root, 0) ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (nd, depth) :: rest ->
      stack := rest;
      if nd != root && nd.stop = max_int then begin
        nd.stop <- n;
        nd.suffix_index <- n - (depth + (n - nd.start))
      end
      else
        Hashtbl.iter
          (fun _ child ->
            let d = if nd == root then 0 else depth + (nd.stop - nd.start) in
            stack := (child, d) :: !stack)
          nd.children;
      (* For internal nodes we still must push children computed with their
         own depth; handled above in the else branch. *)
      ()
  done;
  root

let build seqs =
  List.iter
    (fun s -> Array.iter (fun x -> if x < 0 then invalid_arg "Suffix_tree.build: negative symbol") s)
    seqs;
  let total = List.fold_left (fun acc s -> acc + Array.length s + 1) 0 seqs in
  let text = Array.make total 0 in
  let seq_of_pos = Array.make total (-1) in
  let nseq = List.length seqs in
  let seq_start = Array.make (max nseq 1) 0 in
  let seq_lens = Array.make (max nseq 1) 0 in
  let off = ref 0 in
  List.iteri
    (fun si s ->
      seq_start.(si) <- !off;
      seq_lens.(si) <- Array.length s;
      Array.iteri
        (fun j x ->
          text.(!off + j) <- x;
          seq_of_pos.(!off + j) <- si)
        s;
      off := !off + Array.length s;
      (* Unique sentinel: encode as [-(si + 1)]. *)
      text.(!off) <- -(si + 1);
      seq_of_pos.(!off) <- si;
      incr off)
    seqs;
  let root = ukkonen text in
  { text; root; seq_of_pos; seq_start; seq_lens }

let is_leaf nd = Hashtbl.length nd.children = 0

(* Iterative DFS that visits every node with its string depth (path length
   from the root to the *top* of the node's incoming edge plus edge length). *)
let iter_nodes t f =
  let stack = ref [ (t.root, 0) ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (nd, path_len) :: rest ->
      stack := rest;
      let depth =
        if nd == t.root then 0 else path_len + (nd.stop - nd.start)
      in
      f nd depth;
      Hashtbl.iter (fun _ c -> stack := (c, depth) :: !stack) nd.children
  done

(* Leaf suffix starts below a node, via DFS. *)
let leaf_starts nd =
  let acc = ref [] in
  let stack = ref [ nd ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | x :: rest ->
      stack := rest;
      if is_leaf x then acc := x.suffix_index :: !acc
      else Hashtbl.iter (fun _ c -> stack := c :: !stack) x.children
  done;
  !acc

let to_occurrence t gpos =
  let seq = t.seq_of_pos.(gpos) in
  { seq; pos = gpos - t.seq_start.(seq) }

let repeats ?(min_length = 2) t =
  let out = ref [] in
  iter_nodes t (fun nd depth ->
      if nd != t.root && (not (is_leaf nd)) && depth >= min_length then begin
        let starts = List.sort Int.compare (leaf_starts nd) in
        (* A path of depth >= 1 containing a sentinel cannot repeat (each
           sentinel is unique), so every reported occurrence lies within a
           single input sequence. *)
        let occs = List.map (to_occurrence t) starts in
        match occs with
        | _ :: _ :: _ -> out := { length = depth; occs } :: !out
        | [ _ ] | [] -> ()
      end);
  !out

let contains t needle =
  let m = Array.length needle in
  if m = 0 then true
  else begin
    let nd = ref t.root in
    let i = ref 0 in
    let ok = ref true in
    (try
       while !i < m do
         match Hashtbl.find_opt !nd.children needle.(!i) with
         | None ->
           ok := false;
           raise Exit
         | Some child ->
           let el = child.stop - child.start in
           let j = ref 0 in
           while !j < el && !i < m do
             if t.text.(child.start + !j) <> needle.(!i) then begin
               ok := false;
               raise Exit
             end;
             incr j;
             incr i
           done;
           nd := child
       done
     with Exit -> ());
    !ok
  end

let count_leaves t =
  let n = ref 0 in
  iter_nodes t (fun nd _ -> if nd != t.root && is_leaf nd then incr n);
  !n

let substring_at t occ len =
  let g = t.seq_start.(occ.seq) + occ.pos in
  if occ.pos + len > t.seq_lens.(occ.seq) then
    invalid_arg "Suffix_tree.substring_at: out of range";
  Array.sub t.text g len
