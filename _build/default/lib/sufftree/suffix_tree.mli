(** Generalized suffix tree over integer sequences (Ukkonen's algorithm,
    linear time).  This mirrors the data structure LLVM's MachineOutliner
    uses to discover repeated machine-instruction sequences (§II-C).

    Sequences are arrays of non-negative symbols; the builder inserts a
    distinct negative sentinel after each sequence, so no reported repeat
    ever spans two sequences. *)

type t

type occurrence = {
  seq : int;  (** index of the input sequence *)
  pos : int;  (** start offset within that sequence *)
}

type repeat = {
  length : int;
  occs : occurrence list;  (** at least two, in increasing text order *)
}

val build : int array list -> t
(** Symbols must be [>= 0]; raises [Invalid_argument] otherwise. *)

val repeats : ?min_length:int -> t -> repeat list
(** All right-maximal repeated substrings of length [>= min_length]
    (default 2) with every occurrence.  A substring is right-maximal when
    two of its occurrences are followed by different symbols; every
    repeated substring is a prefix of some right-maximal one. *)

val contains : t -> int array -> bool
(** Substring membership across all indexed sequences. *)

val count_leaves : t -> int
(** Total number of suffixes indexed (for testing). *)

val substring_at : t -> occurrence -> int -> int array
(** [substring_at t occ len] extracts the symbols of an occurrence (for
    testing and debugging). *)
