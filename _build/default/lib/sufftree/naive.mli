(** Quadratic reference implementation of repeated-substring discovery,
    used to cross-check {!Suffix_tree} in property tests and to compare
    against in the micro-benchmarks. *)

val repeats :
  ?min_length:int -> int array list -> (int list * Suffix_tree.occurrence list) list
(** All right-maximal repeated substrings, as (symbols, occurrences), with
    occurrences sorted; the result list is sorted for stable comparison. *)

val all_repeated : ?min_length:int -> int array list -> (int list * int) list
(** Every repeated substring (right-maximal or not) with its occurrence
    count, sorted. *)
