lib/sufftree/naive.mli: Suffix_tree
