lib/sufftree/naive.ml: Array Int List Map Stdlib Suffix_tree
