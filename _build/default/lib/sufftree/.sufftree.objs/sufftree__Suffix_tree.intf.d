lib/sufftree/suffix_tree.mli:
