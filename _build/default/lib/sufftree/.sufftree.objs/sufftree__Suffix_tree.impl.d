lib/sufftree/suffix_tree.ml: Array Hashtbl Int List
