module Key = struct
  type t = int list

  let compare = Stdlib.compare
end

module M = Map.Make (Key)

let sub_list s pos len =
  let rec go i acc = if i < pos then acc else go (i - 1) (s.(i) :: acc) in
  go (pos + len - 1) []

(* Map each substring of length >= min_length to its occurrences, tagging
   each occurrence with the symbol that follows it (or the sequence index as
   a unique "end" marker) so right-maximality can be decided. *)
let gather ?(min_length = 2) seqs =
  let tbl = ref M.empty in
  List.iteri
    (fun si s ->
      let n = Array.length s in
      for pos = 0 to n - 1 do
        for len = min_length to n - pos do
          let key = sub_list s pos len in
          let follower =
            if pos + len < n then `Sym s.(pos + len) else `End si
          in
          let entry = ({ Suffix_tree.seq = si; pos }, follower) in
          tbl :=
            M.update key
              (function None -> Some [ entry ] | Some l -> Some (entry :: l))
              !tbl
        done
      done)
    seqs;
  !tbl

let is_right_maximal entries =
  match entries with
  | [] | [ _ ] -> false
  | (_, f) :: rest -> List.exists (fun (_, f') -> f' <> f) rest

let repeats ?min_length seqs =
  let tbl = gather ?min_length seqs in
  M.fold
    (fun key entries acc ->
      if List.length entries >= 2 && is_right_maximal entries then
        let occs =
          List.sort
            (fun (a : Suffix_tree.occurrence) b ->
              match Int.compare a.seq b.seq with 0 -> Int.compare a.pos b.pos | c -> c)
            (List.map fst entries)
        in
        (key, occs) :: acc
      else acc)
    tbl []
  |> List.sort Stdlib.compare

let all_repeated ?min_length seqs =
  let tbl = gather ?min_length seqs in
  M.fold
    (fun key entries acc ->
      let n = List.length entries in
      if n >= 2 then (key, n) :: acc else acc)
    tbl []
  |> List.sort Stdlib.compare
