(* End-to-end tests for the Swiftlet front end: every program is compiled
   to MIR, checked against the MIR evaluator AND against machine code
   executed in the interpreter — and most are additionally run after five
   rounds of whole-program outlining. *)

let compile_exn src =
  match Swiftlet.Compile.compile_module ~name:"m" src with
  | Ok m -> m
  | Error e -> Alcotest.fail e

let eval_outputs m =
  match Eval.run ~entry:"main" m with
  | Ok r -> (r.exit_value, r.output)
  | Error e -> Alcotest.fail ("eval: " ^ Eval.error_to_string e)

let machine_outputs ?(outline = false) m =
  let prog = Codegen.compile_modul m in
  (match Machine.Program.validate prog with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("invalid machine program: " ^ e));
  let prog = if outline then fst (Outcore.Repeat.run ~rounds:5 prog) else prog in
  let config = { Perfsim.Interp.default_config with model_perf = false } in
  match Perfsim.Interp.run ~config ~entry:"main" prog with
  | Ok r -> (r.exit_value, r.output)
  | Error e -> Alcotest.fail ("machine: " ^ Perfsim.Interp.error_to_string e)

(* Compile, run through all three paths, check outputs agree and match. *)
let check_program ?expect_exit ?expect_output src =
  let m = compile_exn src in
  (match Ir.validate m with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("lowered module invalid: " ^ e));
  let ev, eo = eval_outputs m in
  let mv, mo = machine_outputs m in
  Alcotest.(check int) "eval vs machine exit" ev mv;
  Alcotest.(check (list int)) "eval vs machine output" eo mo;
  let ov, oo = machine_outputs ~outline:true m in
  Alcotest.(check int) "outlined exit" ev ov;
  Alcotest.(check (list int)) "outlined output" eo oo;
  (match expect_exit with
  | Some v -> Alcotest.(check int) "exit value" v ev
  | None -> ());
  match expect_output with
  | Some o -> Alcotest.(check (list int)) "output" o eo
  | None -> ()

let test_arith () =
  check_program ~expect_exit:42
    {|
func main() -> Int {
  let a = 2 + 3 * 4        // 14
  let b = (2 + 3) * 4      // 20
  let c = 100 / 8          // 12
  let d = 100 % 8          // 4
  let e = -(a - b)         // 6
  let f = 7 & 12           // 4
  let g = 1 << 4           // 16
  let h = 256 >> 3         // 32
  print(a) print(b) print(c) print(d) print(e) print(f) print(g) print(h)
  return a + b + d + f     // 42
}
|}
    ~expect_output:[ 14; 20; 12; 4; 6; 4; 16; 32 ]

let test_control_flow () =
  check_program ~expect_exit:55
    {|
func main() -> Int {
  var acc = 0
  for i in 1 ..< 11 {
    acc = acc + i
  }
  var j = 10
  while j > 0 {
    if j % 2 == 0 {
      print(j)
    } else {
      print(0 - j)
    }
    j = j - 1
  }
  return acc
}
|}
    ~expect_output:[ 10; -9; 8; -7; 6; -5; 4; -3; 2; -1 ]

let test_short_circuit () =
  (* side(x) prints; && and || must not evaluate their right side when the
     left side decides. *)
  check_program
    {|
func side(x: Int) -> Bool {
  print(x)
  return x > 0
}
func main() -> Int {
  if false && side(1) { print(100) }
  if true || side(2) { print(200) }
  if true && side(3) { print(300) }
  if false || side(4) { print(400) }
  return 0
}
|}
    ~expect_output:[ 200; 3; 300; 4; 400 ]

let test_recursion () =
  check_program ~expect_exit:55
    {|
func fib(n: Int) -> Int {
  if n < 2 { return n }
  return fib(n - 1) + fib(n - 2)
}
func main() -> Int {
  return fib(10)
}
|}

let test_classes () =
  check_program
    {|
class Point {
  var x: Int
  var y: Int
  init(x: Int, y: Int) {
    self.x = x
    self.y = y
  }
  func norm() -> Int {
    return self.x * self.x + self.y * self.y
  }
  func shift(dx: Int) {
    self.x = self.x + dx
  }
}
func main() -> Int {
  let p = Point(3, 4)
  print(p.norm())
  p.shift(1)
  print(p.x)
  p.y = 0
  return p.norm()          // x=4, y=0 -> 16
}
|}
    ~expect_output:[ 25; 4 ] ~expect_exit:16

let test_arrays () =
  check_program ~expect_exit:285
    {|
func main() -> Int {
  let a = array(10)
  for i in 0 ..< 10 {
    a[i] = i * i
  }
  var total = 0
  for i in 0 ..< len(a) {
    total = total + a[i]
  }
  return total
}
|}

let test_bounds_trap () =
  let m = compile_exn
    {|
func main() -> Int {
  let a = array(3)
  return a[5]
}
|}
  in
  (match Eval.run ~entry:"main" m with
  | Error (Eval.Trap _) -> ()
  | Ok _ -> Alcotest.fail "expected bounds trap in eval"
  | Error e -> Alcotest.fail ("unexpected eval error: " ^ Eval.error_to_string e));
  let prog = Codegen.compile_modul m in
  let config = { Perfsim.Interp.default_config with model_perf = false } in
  match Perfsim.Interp.run ~config ~entry:"main" prog with
  | Error (Perfsim.Interp.Trap _) -> ()
  | Ok _ -> Alcotest.fail "expected bounds trap in machine"
  | Error e -> Alcotest.fail ("unexpected machine error: " ^ Perfsim.Interp.error_to_string e)

let test_closures () =
  check_program ~expect_exit:30
    {|
func apply(f: (Int) -> Int, x: Int) -> Int {
  return f(x)
}
func main() -> Int {
  let k = 7
  let addk = { (x: Int) in return x + k }
  print(addk(3))                 // 10
  let r = apply({ (x: Int) in return x * 2 }, 10)
  print(r)                       // 20
  return 10 + r
}
|}
    ~expect_output:[ 10; 20 ]

let test_function_values () =
  check_program ~expect_exit:9
    {|
func triple(x: Int) -> Int { return x * 3 }
func main() -> Int {
  let f = triple
  return f(3)
}
|}

let test_specialization_creates_clones () =
  let m = compile_exn
    {|
func evaluate(f: (Int) -> Int, x: Int) -> Int {
  var acc = 0
  for i in 0 ..< x {
    acc = acc + f(i)
  }
  return acc
}
func main() -> Int {
  let a = evaluate({ (v: Int) in return v + 1 }, 3)
  let b = evaluate({ (v: Int) in return v * 2 }, 3)
  let c = evaluate({ (v: Int) in return v * v }, 3)
  print(a) print(b) print(c)
  return a + b + c
}
|}
  in
  (* Three call sites passing closures: three specialized clones. *)
  let specs =
    List.filter
      (fun (f : Ir.func) ->
        String.length f.name > 13 && String.sub f.name 0 13 = "evaluate_spec")
      m.Ir.funcs
  in
  Alcotest.(check int) "three specializations" 3 (List.length specs);
  let ev, eo = eval_outputs m in
  Alcotest.(check int) "sum" 17 ev;
  Alcotest.(check (list int)) "parts" [ 6; 6; 5 ] eo;
  let mv, mo = machine_outputs m in
  Alcotest.(check int) "machine sum" 17 mv;
  Alcotest.(check (list int)) "machine parts" [ 6; 6; 5 ] mo

let test_throwing () =
  check_program ~expect_exit:1
    {|
func decode(v: Int) throws -> Int {
  if v < 0 { throw }
  return v * 10
}
func main() -> Int {
  let ok = try? decode(4)
  print(ok)                  // 40
  let bad = try? decode(0 - 1)
  print(bad)                 // 0 (error cleared)
  let again = try? decode(2)
  print(again)               // 20: flag must have been cleared
  return 1
}
|}
    ~expect_output:[ 40; 0; 20 ]

let test_try_propagation () =
  check_program ~expect_exit:0
    {|
func inner(v: Int) throws -> Int {
  if v == 3 { throw }
  return v
}
func outer(v: Int) throws -> Int {
  let a = try inner(v)
  let b = try inner(v + 1)
  return a + b
}
func main() -> Int {
  print(try? outer(10))     // 21
  print(try? outer(2))      // 0: inner(3) throws inside outer
  print(try? outer(3))      // 0: first call throws
  return 0
}
|}
    ~expect_output:[ 21; 0; 0 ]

let test_throwing_init () =
  check_program
    {|
class Record {
  var id: Int
  var payload: [Int]
  var extra: [Int]
  init(a: Int, b: Int) throws {
    self.id = try check(a)
    self.payload = array(4)
    self.extra = array(8)
    let x = try check(b)
    self.id = self.id + x
  }
}
func check(v: Int) throws -> Int {
  if v < 0 { throw }
  return v
}
func main() -> Int {
  let good = try? Record(1, 2)
  if good == 0 { print(111) } else { print((good).id) }   // 3
  let bad = try? Record(0 - 1, 2)
  if bad == 0 { print(222) } else { print(1) }            // 222
  let bad2 = try? Record(1, 0 - 5)
  if bad2 == 0 { print(333) } else { print(2) }           // 333
  return 0
}
|}
    ~expect_output:[ 3; 222; 333 ]

let test_init_cleanup_blocks () =
  (* A throwing init with several reference fields must produce the
     cleanup block with one phi per reference-field assignment (Fig. 9). *)
  let m = compile_exn
    {|
class Big {
  var a: [Int]
  var b: [Int]
  var c: [Int]
  var n: Int
  init(x: Int) throws {
    self.a = array(1)
    self.n = try check(x)
    self.b = array(2)
    self.n = self.n + (try check(x + 1))
    self.c = array(3)
    self.n = self.n + (try check(x + 2))
  }
}
func check(v: Int) throws -> Int {
  if v < 0 { throw }
  return v
}
func main() -> Int {
  let r = try? Big(5)
  if r == 0 { return 0 - 1 }
  return (r).n
}
|}
  in
  let init_f =
    List.find (fun (f : Ir.func) -> f.Ir.name = "Big_init") m.Ir.funcs
  in
  let cleanup =
    List.find_opt (fun (b : Ir.block) -> b.Ir.label = "cleanup_L") init_f.Ir.blocks
  in
  (match cleanup with
  | None -> Alcotest.fail "no cleanup block generated"
  | Some b ->
    (* Three ref-typed assignments -> three Init-flag phis. *)
    Alcotest.(check int) "init flags" 3 (List.length b.Ir.phis);
    (* Each phi has one incoming per error edge (three try sites). *)
    List.iter
      (fun (p : Ir.phi) ->
        Alcotest.(check int) "edges per flag" 3 (List.length p.Ir.incoming))
      b.Ir.phis);
  check_program ~expect_exit:18
    {|
class Big {
  var a: [Int]
  var b: [Int]
  var c: [Int]
  var n: Int
  init(x: Int) throws {
    self.a = array(1)
    self.n = try check(x)
    self.b = array(2)
    self.n = self.n + (try check(x + 1))
    self.c = array(3)
    self.n = self.n + (try check(x + 2))
  }
}
func check(v: Int) throws -> Int {
  if v < 0 { throw }
  return v
}
func main() -> Int {
  let r = try? Big(5)
  if r == 0 { return 0 - 1 }
  return (r).n
}
|}

let test_refcounting_effects () =
  (* Retains/releases must actually execute: a retained object's refcount
     is visible through the runtime (checked indirectly: machine and eval
     agree on every program that exercises retain/release). *)
  check_program ~expect_exit:7
    {|
class Box {
  var v: Int
  init(v: Int) { self.v = v }
}
func pick(a: Box, b: Box, flag: Bool) -> Box {
  if flag { return a }
  return b
}
func main() -> Int {
  let x = Box(3)
  let y = Box(4)
  let z = pick(x, y, true)
  let w = pick(x, y, false)
  return z.v + w.v
}
|}

let test_multi_module () =
  let sources =
    [
      ( "util",
        {|
func helper(x: Int) -> Int { return x * 2 + 1 }
|} );
      ( "app",
        {|
func main() -> Int {
  var t = 0
  for i in 0 ..< 5 { t = t + helper(i) }
  return t
}
|} );
    ]
  in
  match Swiftlet.Compile.compile_program sources with
  | Error e -> Alcotest.fail e
  | Ok mods -> (
    match Link.link ~flag_semantics:Link.Attributes ~name:"whole" mods with
    | Error e -> Alcotest.fail (Link.error_to_string e)
    | Ok whole ->
      let ev, _ = eval_outputs whole in
      Alcotest.(check int) "cross-module call" 25 ev;
      let prog = Codegen.compile_modul whole in
      let config = { Perfsim.Interp.default_config with model_perf = false } in
      (match Perfsim.Interp.run ~config ~entry:"main" prog with
      | Ok r -> Alcotest.(check int) "machine" 25 r.exit_value
      | Error e -> Alcotest.fail (Perfsim.Interp.error_to_string e)))

let test_type_errors () =
  let expect_error src =
    match Swiftlet.Compile.compile_module ~name:"m" src with
    | Ok _ -> Alcotest.fail ("expected type error for: " ^ src)
    | Error _ -> ()
  in
  expect_error "func main() -> Int { return true }";
  expect_error "func main() -> Int { let x = y return 0 }";
  expect_error "func main() -> Int { if 3 { } return 0 }";
  expect_error "func f() throws -> Int { return 1 }\nfunc main() -> Int { return f() }";
  expect_error "func main() -> Int { throw return 0 }";
  expect_error "func main() -> Int { let a = array(3) return a[true] }";
  expect_error "func main() -> Int { print(main(1)) return 0 }"

let test_parse_errors () =
  let expect_error src =
    match Swiftlet.Parser.parse_module ~name:"m" src with
    | Ok _ -> Alcotest.fail ("expected parse error for: " ^ src)
    | Error _ -> ()
  in
  expect_error "func main( { }";
  expect_error "func main() -> { return 0 }";
  expect_error "class { }";
  expect_error "func main() -> Int { return 0 "

let test_clone_detect () =
  let src =
    {|
func a1(x: Int) -> Int { let y = x * 3 + 1 return y }
func a2(z: Int) -> Int { let w = z * 9 + 2 return w }
func b(x: Int) -> Int { return x - 1 }
func main() -> Int { return a1(1) + a2(2) + b(3) }
|}
  in
  match Swiftlet.Parser.parse_module ~name:"m" src with
  | Error e -> Alcotest.fail e
  | Ok ast ->
    let r = Swiftlet.Clone_detect.analyze ~window:8 ~min_tokens:4 ~abstract:true [ ast ] in
    Alcotest.(check int) "functions" 4 r.functions;
    (* a1/a2 are type-2 clones (identifiers and literals abstracted). *)
    Alcotest.(check int) "clone group" 1 r.clone_groups;
    Alcotest.(check int) "cloned functions" 2 r.cloned_functions

let test_sil_outline () =
  let src =
    {|
class Holder {
  var a: [Int]
  var b: [Int]
  var c: [Int]
  init() {
    self.a = array(1)
    self.b = array(1)
    self.c = array(1)
  }
}
func main() -> Int {
  let h = Holder()
  let x = array(4)
  h.a = x
  h.b = x
  h.c = x
  return len(h.c)
}
|}
  in
  let m = compile_exn src in
  let before = eval_outputs m in
  let m', stats = Swiftlet.Sil_outline.run ~min_occurrences:2 ~include_retain_store:true m in
  Alcotest.(check bool) "rewrote sites" true (stats.sites_rewritten >= 2);
  Alcotest.(check bool) "created helpers" true (stats.helpers_created >= 1);
  let after = eval_outputs m' in
  Alcotest.(check (pair int (list int))) "behaviour preserved" before after;
  let mv, mo = machine_outputs m' in
  Alcotest.(check (pair int (list int))) "machine agrees" before (mv, mo)

let () =
  Alcotest.run "swiftlet"
    [
      ( "exec",
        [
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "control flow" `Quick test_control_flow;
          Alcotest.test_case "short circuit" `Quick test_short_circuit;
          Alcotest.test_case "recursion" `Quick test_recursion;
          Alcotest.test_case "classes" `Quick test_classes;
          Alcotest.test_case "arrays" `Quick test_arrays;
          Alcotest.test_case "bounds trap" `Quick test_bounds_trap;
          Alcotest.test_case "closures" `Quick test_closures;
          Alcotest.test_case "function values" `Quick test_function_values;
          Alcotest.test_case "refcounting" `Quick test_refcounting_effects;
        ] );
      ( "errors",
        [
          Alcotest.test_case "throwing basics" `Quick test_throwing;
          Alcotest.test_case "try propagation" `Quick test_try_propagation;
          Alcotest.test_case "throwing init" `Quick test_throwing_init;
          Alcotest.test_case "init cleanup blocks" `Quick test_init_cleanup_blocks;
        ] );
      ( "phases",
        [
          Alcotest.test_case "specialization" `Quick test_specialization_creates_clones;
          Alcotest.test_case "multi module" `Quick test_multi_module;
          Alcotest.test_case "type errors" `Quick test_type_errors;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "clone detect" `Quick test_clone_detect;
          Alcotest.test_case "sil outline" `Quick test_sil_outline;
        ] );
    ]
