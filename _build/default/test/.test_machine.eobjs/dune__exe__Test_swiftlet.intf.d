test/test_swiftlet.mli:
