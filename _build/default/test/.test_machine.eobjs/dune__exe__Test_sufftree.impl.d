test/test_sufftree.ml: Alcotest Array Format Int List QCheck QCheck_alcotest String Sufftree
