test/test_swiftlet.ml: Alcotest Codegen Eval Ir Link List Machine Outcore Perfsim String Swiftlet
