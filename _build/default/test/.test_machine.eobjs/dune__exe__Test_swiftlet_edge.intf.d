test/test_swiftlet_edge.mli:
