test/test_workload.ml: Alcotest Array Codegen Eval Ir Lazy Link List Machine Outcore Perfsim Pipeline Repro_stats String Swiftlet Workload
