test/test_machine.ml: Alcotest Array Asm_parser Asm_printer Block Cond Dataobj Format Insn List Liveness Machine Mfunc Printf Program QCheck QCheck_alcotest Reg Regset String
