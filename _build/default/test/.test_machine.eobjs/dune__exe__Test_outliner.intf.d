test/test_outliner.mli:
