test/test_outliner.ml: Alcotest Array Asm_parser Block Buffer Format Insn List Machine Mfunc Option Outcore Perfsim Printf Program QCheck QCheck_alcotest Reg String
