test/test_mir.mli:
