test/test_mir.ml: Alcotest Array Builder Codegen Dce Eval Fmsa Format Intervals Ir Link List Machine Merge_functions Option Out_of_ssa Outcore Perfsim Printf QCheck QCheck_alcotest
