test/test_swiftlet_edge.ml: Alcotest Codegen Eval List Outcore Perfsim Printf QCheck QCheck_alcotest Swiftlet
