test/test_perfsim.mli:
