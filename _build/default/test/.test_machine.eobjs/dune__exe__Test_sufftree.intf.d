test/test_sufftree.mli:
