test/test_perfsim.ml: Alcotest Asm_parser Block Format Insn Linker List Machine Mfunc Outcore Perfsim Printf Program QCheck QCheck_alcotest Reg String
