(* Edge-case programs for the Swiftlet front end: nested closures, chained
   class fields, shadowing, evaluation-order subtleties.  Each program runs
   through the MIR evaluator, the machine interpreter, and the outlined
   machine interpreter; all three must agree with the expected values. *)

let compile_exn src =
  match Swiftlet.Compile.compile_module ~name:"m" src with
  | Ok m -> m
  | Error e -> Alcotest.fail e

let check_program ?expect_exit ?expect_output src =
  let m = compile_exn src in
  let ev, eo =
    match Eval.run ~entry:"main" m with
    | Ok r -> (r.exit_value, r.output)
    | Error e -> Alcotest.fail ("eval: " ^ Eval.error_to_string e)
  in
  let prog = Codegen.compile_modul m in
  let config = { Perfsim.Interp.default_config with model_perf = false } in
  let machine p =
    match Perfsim.Interp.run ~config ~entry:"main" p with
    | Ok r -> (r.Perfsim.Interp.exit_value, r.Perfsim.Interp.output)
    | Error e -> Alcotest.fail ("machine: " ^ Perfsim.Interp.error_to_string e)
  in
  let mv, mo = machine prog in
  let ov, oo = machine (fst (Outcore.Repeat.run ~rounds:5 prog)) in
  Alcotest.(check int) "machine exit" ev mv;
  Alcotest.(check (list int)) "machine output" eo mo;
  Alcotest.(check int) "outlined exit" ev ov;
  Alcotest.(check (list int)) "outlined output" eo oo;
  (match expect_exit with
  | Some v -> Alcotest.(check int) "exit" v ev
  | None -> ());
  match expect_output with
  | Some o -> Alcotest.(check (list int)) "output" o eo
  | None -> ()

let test_nested_closures () =
  check_program ~expect_exit:30
    {|
func twice(f: (Int) -> Int, x: Int) -> Int {
  return f(f(x))
}
func main() -> Int {
  let base = 5
  let outer = { (a: Int) in
    let inner = { (b: Int) in return b * 2 + base }
    return inner(a) + 1
  }
  return twice(outer, 3)    // outer(a) = 2a + 6; outer(outer(3)) = 30
}
|}

let test_closure_over_loop_var () =
  check_program ~expect_exit:285
    {|
func apply(f: (Int) -> Int, n: Int) -> Int {
  var acc = 0
  for i in 0 ..< n { acc = acc + f(i) }
  return acc
}
func main() -> Int {
  var total = 0
  for k in 0 ..< 10 {
    total = total + apply({ (x: Int) in return x * k }, 2)  // k per iteration
  }
  // sum over k of (0*k + 1*k) = sum k = 45... plus squares loop below
  let sq = apply({ (x: Int) in return x * x }, 10)           // 285
  print(total)
  return sq
}
|}
    ~expect_output:[ 45 ]

let test_chained_class_fields () =
  check_program ~expect_exit:30
    {|
class Inner {
  var v: Int
  init(v: Int) { self.v = v }
}
class Outer {
  var inner: Inner
  var w: Int
  init(v: Int) {
    self.inner = Inner(v)
    self.w = v * 2
  }
  func bump() {
    self.inner.v = self.inner.v + 1
  }
}
func main() -> Int {
  let o = Outer(9)
  o.bump()
  print(o.inner.v)             // 10
  o.inner = Inner(12)
  return o.inner.v + o.w       // 12 + 18
}
|}
    ~expect_output:[ 10 ]

let test_shadowing () =
  check_program ~expect_exit:9
    {|
func main() -> Int {
  let x = 1
  var acc = 0
  if x == 1 {
    let x = 2
    acc = acc + x      // 2
  }
  for x in 5 ..< 7 {
    acc = acc + x      // 5 + 6? no: 5, then 6 -> 11... recompute
  }
  // acc = 2 + 5 + 6 = 13; subtract outer x restored
  return acc - x * 4   // 13 - 4 = 9
}
|}

let test_early_return_in_loops () =
  check_program ~expect_exit:37
    {|
func find(a: [Int], needle: Int) -> Int {
  for i in 0 ..< len(a) {
    if a[i] == needle {
      return i
    }
    if a[i] > 900 {
      return 0 - 2
    }
  }
  return 0 - 1
}
func main() -> Int {
  let a = array(50)
  for i in 0 ..< 50 { a[i] = i * 3 }
  let hit = find(a, 111)       // index 37
  let miss = find(a, 112)      // -1
  print(miss)
  return hit
}
|}
    ~expect_output:[ -1 ]

let test_while_short_circuit_condition () =
  check_program ~expect_exit:10
    {|
func main() -> Int {
  let a = array(10)
  for i in 0 ..< 10 { a[i] = i }
  var i = 0
  // The right operand indexes the array and must not run once i = 10.
  while i < len(a) && a[i] >= 0 {
    i = i + 1
  }
  return i
}
|}

let test_range_evaluated_once () =
  check_program ~expect_exit:5
    {|
func main() -> Int {
  var n = 5
  var count = 0
  for i in 0 ..< n {
    n = n + 1        // must not extend the loop
    count = count + 1
  }
  print(n)           // 10
  return count
}
|}
    ~expect_output:[ 10 ]

let test_mutual_recursion () =
  check_program ~expect_exit:1
    {|
func is_even(n: Int) -> Bool {
  if n == 0 { return true }
  return is_odd(n - 1)
}
func is_odd(n: Int) -> Bool {
  if n == 0 { return false }
  return is_even(n - 1)
}
func main() -> Int {
  if is_even(40) && is_odd(17) && !is_even(9) { return 1 }
  return 0
}
|}

let test_deep_expression () =
  check_program ~expect_exit:1
    {|
func main() -> Int {
  let v = ((((1 + 2) * (3 + 4) - (5 - 2)) / 3) + ((2 << 3) >> 2)) % 13
  // (((3*7)-3)/3) + (16>>2) = (18/3) + 4 = 10; 10 % 13 = 10
  if v == 10 { return 1 }
  return 0
}
|}

let test_tryopt_in_loop () =
  check_program ~expect_exit:39534
    {|
func risky(v: Int) throws -> Int {
  if v % 3 == 0 { throw }
  return v * 2
}
func main() -> Int {
  var acc = 0
  var failures = 0
  for i in 0 ..< 100 {
    let r = try? risky(i)
    if r == 0 && i != 0 {
      failures = failures + 1
    } else {
      acc = acc + r
    }
  }
  // even though risky(0) would throw, r==0&&i!=0 guards count it as acc+0
  // acc = 2 * sum of i in 0..99 with i %% 3 != 0 = 6534; failures = 33
  return acc + failures * 1000
}
|}

let test_method_chains () =
  check_program ~expect_exit:64
    {|
class Counter {
  var n: Int
  init() { self.n = 0 }
  func incr() { self.n = self.n + 1 }
  func double() { self.n = self.n * 2 }
  func get() -> Int { return self.n }
}
func main() -> Int {
  let c = Counter()
  c.incr()
  for i in 0 ..< 6 { c.double() }
  return c.get()
}
|}

let test_array_aliasing () =
  check_program ~expect_exit:99
    {|
func scribble(a: [Int]) {
  a[0] = 99
}
func main() -> Int {
  let a = array(4)
  let b = a          // same underlying storage (reference semantics here)
  scribble(b)
  return a[0]
}
|}

let test_bool_returning_closure () =
  check_program ~expect_exit:3
    {|
func count_if(f: (Int) -> Bool, n: Int) -> Int {
  var c = 0
  for i in 0 ..< n {
    if f(i) { c = c + 1 }
  }
  return c
}
func main() -> Int {
  return count_if({ (x: Int) in return x % 3 == 0 }, 9)  // 0,3,6
}
|}


(* Random well-typed Swiftlet programs: integers only, constant loop
   bounds (termination guaranteed), fuzzing the SSA construction in the
   lowering pass against the evaluator and the machine interpreter. *)

let gen_program =
  QCheck.Gen.(
    let var_name k = Printf.sprintf "v%d" k in
    (* Expressions over currently-bound variables v0..v(n-1). *)
    let rec gen_expr nvars depth =
      if depth = 0 || nvars = 0 then
        if nvars = 0 then map (fun n -> Swiftlet.Ast.Int_lit n) (int_range 0 99)
        else
          oneof
            [
              map (fun n -> Swiftlet.Ast.Int_lit n) (int_range 0 99);
              map (fun k -> Swiftlet.Ast.Var (var_name (k mod nvars))) (int_range 0 (max 0 (nvars - 1)));
            ]
      else
        frequency
          [
            (2, map (fun n -> Swiftlet.Ast.Int_lit n) (int_range 0 99));
            (3, map (fun k -> Swiftlet.Ast.Var (var_name (k mod nvars))) (int_range 0 (nvars - 1)));
            ( 3,
              map3
                (fun op a b -> Swiftlet.Ast.Binop (op, a, b))
                (oneofl Swiftlet.Ast.[ Add; Sub; Mul; BAnd; BOr; BXor ])
                (gen_expr nvars (depth - 1))
                (gen_expr nvars (depth - 1)) );
            ( 1,
              map2
                (fun a b ->
                  (* Division with a guaranteed non-zero divisor. *)
                  Swiftlet.Ast.Binop (Swiftlet.Ast.Div, a, Swiftlet.Ast.Binop (Swiftlet.Ast.BOr, b, Swiftlet.Ast.Int_lit 1)))
                (gen_expr nvars (depth - 1))
                (gen_expr nvars (depth - 1)) );
          ]
    in
    let gen_cond nvars depth =
      map3
        (fun op a b -> Swiftlet.Ast.Binop (op, a, b))
        (oneofl Swiftlet.Ast.[ Eq; Ne; Lt; Le; Gt; Ge ])
        (gen_expr nvars depth) (gen_expr nvars depth)
    in
    (* Statements; nvars is threaded through Lets. *)
    let rec gen_stmts nvars budget =
      if budget <= 0 then return ([], nvars)
      else
        let* choice = int_range 0 9 in
        let* stmt, nvars' =
          match choice with
          | 0 | 1 | 2 ->
            let* e = gen_expr nvars 2 in
            return (Swiftlet.Ast.Let (var_name nvars, None, e), nvars + 1)
          | 3 | 4 when nvars > 0 ->
            let* k = int_range 0 (nvars - 1) in
            let* e = gen_expr nvars 2 in
            return (Swiftlet.Ast.Assign (Swiftlet.Ast.L_var (var_name k), e), nvars)
          | 5 ->
            let* c = gen_cond nvars 1 in
            let* t, _ = gen_stmts nvars (budget / 2) in
            let* f, _ = gen_stmts nvars (budget / 2) in
            return (Swiftlet.Ast.If (c, t, f), nvars)
          | 6 ->
            (* A for loop with small constant bounds.  The loop variable is
               exposed to the body through a read-only alias so generated
               assignments can never corrupt the iteration. *)
            let* hi = int_range 1 5 in
            let loop_var = Printf.sprintf "loop%d" nvars in
            let* body, _ = gen_stmts (nvars + 1) (budget / 2) in
            let body =
              Swiftlet.Ast.Let (var_name nvars, None, Swiftlet.Ast.Var loop_var) :: body
            in
            return
              (Swiftlet.Ast.For (loop_var, Swiftlet.Ast.Int_lit 0, Swiftlet.Ast.Int_lit hi, body), nvars)
          | 7 when nvars > 0 ->
            let* k = int_range 0 (nvars - 1) in
            return (Swiftlet.Ast.Print (Swiftlet.Ast.Var (var_name k)), nvars)
          | _ ->
            let* e = gen_expr nvars 2 in
            return (Swiftlet.Ast.Let (var_name nvars, None, e), nvars + 1)
        in
        let* rest, nvars'' = gen_stmts nvars' (budget - 1) in
        return (stmt :: rest, nvars'')
    in
    let* body, nvars = gen_stmts 0 12 in
    let* ret = gen_expr (max nvars 0) 2 in
    let fd =
      {
        Swiftlet.Ast.fd_name = "main";
        fd_params = [];
        fd_ret = Some Swiftlet.Ast.T_int;
        fd_throws = false;
        fd_body = body @ [ Swiftlet.Ast.Return (Some ret) ];
      }
    in
    return { Swiftlet.Ast.ma_name = "fuzz"; ma_decls = [ Swiftlet.Ast.D_func fd ] })

let arb_program =
  QCheck.make gen_program ~print:(fun (m : Swiftlet.Ast.module_ast) ->
      Printf.sprintf "<%d decls>" (List.length m.ma_decls))

let prop_fuzz_lowering =
  QCheck.Test.make ~count:400 ~name:"random Swiftlet ASTs: eval = machine = outlined"
    arb_program (fun ast ->
      match Swiftlet.Typecheck.check_module ast with
      | Error e -> QCheck.Test.fail_reportf "generated ill-typed program: %s" e
      | Ok env -> (
        let m = Swiftlet.Lower.lower_module env ast in
        match Eval.run ~entry:"main" m with
        | Error e ->
          QCheck.Test.fail_reportf "eval failed: %s" (Eval.error_to_string e)
        | Ok er -> (
          let prog = Codegen.compile_modul m in
          let config = { Perfsim.Interp.default_config with model_perf = false } in
          let run p =
            match Perfsim.Interp.run ~config ~entry:"main" p with
            | Ok r -> Ok (r.Perfsim.Interp.exit_value, r.Perfsim.Interp.output)
            | Error e -> Error (Perfsim.Interp.error_to_string e)
          in
          match run prog with
          | Error e -> QCheck.Test.fail_reportf "machine failed: %s" e
          | Ok (mv, mo) -> (
            if (er.exit_value, er.output) <> (mv, mo) then
              QCheck.Test.fail_report "eval and machine disagree"
            else
              match run (fst (Outcore.Repeat.run ~rounds:5 prog)) with
              | Error e -> QCheck.Test.fail_reportf "outlined failed: %s" e
              | Ok (ov, oo) -> (er.exit_value, er.output) = (ov, oo)))))

let tests =
  [
    ("nested closures", test_nested_closures);
    ("closure over loop var", test_closure_over_loop_var);
    ("chained class fields", test_chained_class_fields);
    ("shadowing", test_shadowing);
    ("early return in loops", test_early_return_in_loops);
    ("while short-circuit", test_while_short_circuit_condition);
    ("range evaluated once", test_range_evaluated_once);
    ("mutual recursion", test_mutual_recursion);
    ("deep expression", test_deep_expression);
    ("try? in loop", test_tryopt_in_loop);
    ("method chains", test_method_chains);
    ("array aliasing", test_array_aliasing);
    ("bool-returning closure", test_bool_returning_closure);
  ]

let () =
  Alcotest.run "swiftlet-edge"
    [
      ("edge", List.map (fun (n, f) -> Alcotest.test_case n `Quick f) tests);
      ("fuzz", [ QCheck_alcotest.to_alcotest prop_fuzz_lowering ]);
    ]
