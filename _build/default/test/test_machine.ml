(* Tests for the machine IR: registers, register sets, liveness, the
   assembly parser and program validation. *)

open Machine

let reg = Alcotest.testable Reg.pp Reg.equal

let test_reg_roundtrip () =
  for i = 0 to Reg.count - 1 do
    let r = Reg.of_index i in
    Alcotest.(check int) "index/of_index" i (Reg.index r);
    match Reg.of_string (Reg.to_string r) with
    | Some r' -> Alcotest.check reg "string roundtrip" r r'
    | None -> Alcotest.fail ("of_string failed for " ^ Reg.to_string r)
  done

let test_reg_classes () =
  Alcotest.(check bool) "x19 callee-saved" true (Reg.is_callee_saved (Reg.x 19));
  Alcotest.(check bool) "x0 caller-saved" true (Reg.is_caller_saved (Reg.x 0));
  Alcotest.(check bool) "lr callee-saved" true (Reg.is_callee_saved Reg.lr);
  Alcotest.(check bool) "sp not allocatable" false (Reg.is_allocatable Reg.SP);
  Alcotest.(check bool) "x18 not allocatable" false (Reg.is_allocatable (Reg.x 18));
  Alcotest.check reg "arg 0" (Reg.x 0) (Reg.arg 0);
  Alcotest.check reg "lr alias" (Reg.x 30) Reg.lr

let test_regset () =
  let s = Regset.of_list [ Reg.x 0; Reg.lr; Reg.SP ] in
  Alcotest.(check int) "cardinal" 3 (Regset.cardinal s);
  Alcotest.(check bool) "mem lr" true (Regset.mem Reg.lr s);
  Alcotest.(check bool) "mem x1" false (Regset.mem (Reg.x 1) s);
  let s2 = Regset.remove Reg.lr s in
  Alcotest.(check bool) "removed" false (Regset.mem Reg.lr s2);
  Alcotest.(check int) "diff" 1 (Regset.cardinal (Regset.diff s s2));
  Alcotest.(check bool) "to/of roundtrip" true
    (Regset.equal s (Regset.of_list (Regset.to_list s)))

let test_insn_uses_defs () =
  let open Insn in
  let u i = Regset.to_list (uses i) and d i = Regset.to_list (defs i) in
  Alcotest.(check (list (Alcotest.testable Reg.pp Reg.equal)))
    "mov uses" [ Reg.x 1 ] (u (mov_r (Reg.x 0) (Reg.x 1)));
  Alcotest.(check (list (Alcotest.testable Reg.pp Reg.equal)))
    "mov defs" [ Reg.x 0 ] (d (mov_r (Reg.x 0) (Reg.x 1)));
  Alcotest.(check bool) "cmp defines flags" true
    (Regset.mem Reg.NZCV (defs (Cmp (Reg.x 0, Imm 3))));
  Alcotest.(check bool) "cset reads flags" true
    (Regset.mem Reg.NZCV (uses (Cset (Reg.x 0, Cond.Eq))));
  Alcotest.(check bool) "bl clobbers lr" true (Regset.mem Reg.lr (defs (Bl "f")));
  Alcotest.(check bool) "bl clobbers x17" true (Regset.mem (Reg.x 17) (defs (Bl "f")));
  Alcotest.(check bool) "bl preserves x19" false (Regset.mem (Reg.x 19) (defs (Bl "f")));
  let pre = { base = Reg.SP; off = -16; mode = Pre } in
  Alcotest.(check bool) "stp pre-index writes sp" true
    (Regset.mem Reg.SP (defs (Stp (Reg.x 19, Reg.x 20, pre))));
  Alcotest.(check bool) "stp pre-index modifies sp" true
    (modifies_sp (Stp (Reg.x 19, Reg.x 20, pre)));
  let off = { base = Reg.SP; off = 16; mode = Offset } in
  Alcotest.(check bool) "ldr offset does not modify sp" false
    (modifies_sp (Ldr (Reg.x 0, off)));
  Alcotest.(check bool) "ldr from sp touches sp" true (touches_sp (Ldr (Reg.x 0, off)))

let parse_exn text =
  match Asm_parser.parse_program text with
  | Ok p -> p
  | Error e -> Alcotest.fail ("parse error: " ^ e)

let simple_func =
  {|
func f module=m1:
entry:
  mov x0, #1
  cmp x0, #2
  b.lt then, else
then:
  mov x0, #10
  b join
else:
  mov x0, #20
  b join
join:
  ret
|}

let test_parse_simple () =
  let p = parse_exn simple_func in
  Alcotest.(check int) "one function" 1 (List.length p.Program.funcs);
  let f = List.hd p.Program.funcs in
  Alcotest.(check string) "name" "f" f.Mfunc.name;
  Alcotest.(check string) "module" "m1" f.Mfunc.from_module;
  Alcotest.(check int) "blocks" 4 (List.length f.Mfunc.blocks);
  Alcotest.(check (result unit string)) "validates" (Ok ()) (Program.validate p)

let test_parse_addressing () =
  let p =
    parse_exn
      {|
func g:
entry:
  stp x19, x20, [sp, #-16]!
  ldr x0, [sp, #8]
  str x1, [x2]
  ldp x19, x20, [sp], #16
  ret
|}
  in
  let f = List.hd p.Program.funcs in
  let b = Mfunc.entry f in
  (match b.Block.body.(0) with
  | Insn.Stp (_, _, { base = Reg.SP; off = -16; mode = Insn.Pre }) -> ()
  | i -> Alcotest.fail ("bad stp: " ^ Insn.to_string i));
  (match b.Block.body.(3) with
  | Insn.Ldp (_, _, { base = Reg.SP; off = 16; mode = Insn.Post }) -> ()
  | i -> Alcotest.fail ("bad ldp: " ^ Insn.to_string i))

let test_parse_tail_call_resolution () =
  let p =
    parse_exn
      {|
func a:
entry:
  nop
  b other      ; not a label here -> tail call
func other:
entry:
  ret
|}
  in
  let a = List.hd p.Program.funcs in
  (match (Mfunc.entry a).Block.term with
  | Block.Tail_call "other" -> ()
  | t -> Alcotest.fail (Format.asprintf "expected tail call, got %a" Block.pp_terminator t));
  Alcotest.(check (result unit string)) "validates" (Ok ()) (Program.validate p)

let test_validate_errors () =
  let bad_branch = parse_exn "func f:\nentry:\n  b nowhere\n" in
  (match Program.validate bad_branch with
  | Ok () -> Alcotest.fail "expected validation error"
  | Error _ -> ());
  let bad_sym = parse_exn "func f:\nentry:\n  bl missing\n  ret\n" in
  (match Program.validate bad_sym with
  | Ok () -> Alcotest.fail "expected unknown-symbol error"
  | Error _ -> ());
  let ok_sym =
    parse_exn "extern missing\nfunc f:\nentry:\n  bl missing\n  ret\n"
  in
  Alcotest.(check (result unit string)) "extern resolves" (Ok ())
    (Program.validate ok_sym)

let test_parse_data () =
  let p = parse_exn "data tbl: 1 2 @f 4\nfunc f:\nentry:\n  adr x0, tbl\n  ret\n" in
  Alcotest.(check int) "data objects" 1 (List.length p.Program.data);
  let d = List.hd p.Program.data in
  Alcotest.(check int) "data size" 32 (Dataobj.size_bytes d);
  Alcotest.(check (result unit string)) "validates" (Ok ()) (Program.validate p)

(* Liveness -------------------------------------------------------------- *)

let func_exn text =
  match Asm_parser.parse_func text with
  | Ok f -> f
  | Error e -> Alcotest.fail ("parse error: " ^ e)

let test_liveness_straightline () =
  let f =
    func_exn
      {|
func f:
entry:
  mov x1, #1
  add x0, x1, x1
  ret
|}
  in
  let lv = Liveness.compute f in
  (* Before `add`, x1 is live; x0 is not. *)
  let live = Liveness.live_before lv ~label:"entry" 1 in
  Alcotest.(check bool) "x1 live" true (Regset.mem (Reg.x 1) live);
  Alcotest.(check bool) "x0 dead" false (Regset.mem (Reg.x 0) live);
  (* LR is live throughout a frameless leaf function (needed by ret). *)
  Alcotest.(check bool) "lr live at entry" true
    (Liveness.lr_live_before lv ~label:"entry" 0)

let test_liveness_lr_dead_after_save () =
  let f =
    func_exn
      {|
func f:
entry:
  stp fp, lr, [sp, #-16]!
  bl g
  mov x1, x0
  ldp fp, lr, [sp], #16
  ret
|}
  in
  let lv = Liveness.compute f in
  (* After the prologue stores LR, it is dead until the epilogue reloads. *)
  Alcotest.(check bool) "lr dead after prologue" false
    (Liveness.lr_live_before lv ~label:"entry" 2);
  Alcotest.(check bool) "lr live before prologue" true
    (Liveness.lr_live_before lv ~label:"entry" 0)

let test_liveness_across_branches () =
  let f =
    func_exn
      {|
func f:
entry:
  mov x5, #7
  cmp x0, #0
  b.eq a, b
a:
  mov x0, x5
  b join
b:
  mov x0, #0
  b join
join:
  ret
|}
  in
  let lv = Liveness.compute f in
  (* x5 is live out of entry (used in block a). *)
  Alcotest.(check bool) "x5 live out of entry" true
    (Regset.mem (Reg.x 5) (Liveness.live_out lv ~label:"entry"));
  (* NZCV is live between cmp and the conditional branch. *)
  Alcotest.(check bool) "flags live before terminator" true
    (Regset.mem Reg.NZCV (Liveness.live_before lv ~label:"entry" 2));
  Alcotest.(check bool) "x5 dead in block b" false
    (Regset.mem (Reg.x 5) (Liveness.live_before lv ~label:"b" 0))

let contains_substring text sub =
  let n = String.length text and m = String.length sub in
  let rec at i = i + m <= n && (String.sub text i m = sub || at (i + 1)) in
  at 0

let test_printer_parser_roundtrip () =
  let p = parse_exn simple_func in
  let text = Format.asprintf "%a" Program.pp p in
  (* The printer output is not the parser's input grammar; just check it is
     non-empty and mentions every block label. *)
  List.iter
    (fun (f : Mfunc.t) ->
      List.iter
        (fun (b : Block.t) ->
          Alcotest.(check bool)
            ("mentions " ^ b.Block.label) true
            (contains_substring text b.Block.label))
        f.Mfunc.blocks)
    p.Program.funcs


(* Printer/parser round trip on random programs. *)

let gen_rt_program =
  QCheck.Gen.(
    let insn =
      oneof
        [
          map2 (fun d s -> Insn.mov_r (Reg.x d) (Reg.x s)) (int_range 0 28) (int_range 0 28);
          map2 (fun d n -> Insn.mov_i (Reg.x d) n) (int_range 0 28) (int_range (-4096) 65535);
          map3
            (fun op d s -> Insn.Binop (op, Reg.x d, Reg.x s, Insn.Imm 12))
            (oneofl Insn.[ Add; Sub; Mul; Sdiv; And; Orr; Eor; Lsl; Lsr; Asr ])
            (int_range 0 28) (int_range 0 28);
          map2
            (fun d off -> Insn.Ldr (Reg.x d, { Insn.base = Reg.SP; off = 8 * off; mode = Insn.Offset }))
            (int_range 0 28) (int_range 0 16);
          map2
            (fun s off -> Insn.Stp (Reg.x s, Reg.x (s + 1), { Insn.base = Reg.SP; off = -16 * off; mode = Insn.Pre }))
            (int_range 0 20) (int_range 1 4);
          return (Insn.Bl "ext");
          map (fun d -> Insn.Adr (Reg.x d, "tbl")) (int_range 0 28);
          map (fun r -> Insn.Cmp (Reg.x r, Insn.Imm 3)) (int_range 0 28);
          map (fun d -> Insn.Cset (Reg.x d, Cond.Le)) (int_range 0 28);
          return Insn.Nop;
        ]
    in
    let func i =
      map2
        (fun insns two_blocks ->
          if two_blocks then
            Mfunc.make ~name:(Printf.sprintf "rt%d" i)
              [
                Block.make ~label:"entry" insns (Block.Cbnz (Reg.x 0, "other", "other2"));
                Block.make ~label:"other" [] (Block.B "other2");
                Block.make ~label:"other2" [] Block.Ret;
              ]
          else
            Mfunc.make ~name:(Printf.sprintf "rt%d" i)
              [ Block.make ~label:"entry" insns Block.Ret ])
        (list_size (int_range 0 10) insn)
        bool
    in
    let* n = int_range 1 5 in
    let rec go i acc =
      if i >= n then return (List.rev acc)
      else
        let* f = func i in
        go (i + 1) (f :: acc)
    in
    let* funcs = go 0 [] in
    return
      (Program.make
         ~data:[ Dataobj.make ~name:"tbl" [ Dataobj.Word 3; Dataobj.Sym "rt0" ] ]
         ~externs:[ "ext" ] funcs))

let prop_asm_roundtrip =
  QCheck.Test.make ~count:300 ~name:"asm print/parse round trip"
    (QCheck.make gen_rt_program ~print:Asm_printer.to_source)
    (fun p ->
      let src = Asm_printer.to_source p in
      match Asm_parser.parse_program src with
      | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e
      | Ok p' ->
        Asm_printer.to_source p' = src
        && Program.code_size_bytes p' = Program.code_size_bytes p)

let () =
  Alcotest.run "machine"
    [
      ( "reg",
        [
          Alcotest.test_case "roundtrip" `Quick test_reg_roundtrip;
          Alcotest.test_case "classes" `Quick test_reg_classes;
          Alcotest.test_case "regset" `Quick test_regset;
        ] );
      ("insn", [ Alcotest.test_case "uses/defs" `Quick test_insn_uses_defs ]);
      ( "parser",
        [
          Alcotest.test_case "simple" `Quick test_parse_simple;
          Alcotest.test_case "addressing" `Quick test_parse_addressing;
          Alcotest.test_case "tail-call resolution" `Quick
            test_parse_tail_call_resolution;
          Alcotest.test_case "validation errors" `Quick test_validate_errors;
          Alcotest.test_case "data" `Quick test_parse_data;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "straight line" `Quick test_liveness_straightline;
          Alcotest.test_case "lr dead after save" `Quick
            test_liveness_lr_dead_after_save;
          Alcotest.test_case "across branches" `Quick
            test_liveness_across_branches;
        ] );
      ( "printer",
        [
          Alcotest.test_case "roundtrip mentions labels" `Quick
            test_printer_parser_roundtrip;
          QCheck_alcotest.to_alcotest prop_asm_roundtrip;
        ] );
    ]
