(* Tests for the workload generators, the pipelines, the statistics library
   and the printer round trip: the 26 benchmarks run to their expected
   values through every execution path; synthetic apps build and behave
   identically under all pipeline configurations. *)

let ok_exn = function
  | Ok x -> x
  | Error e -> Alcotest.fail e

let interp ?(outline = false) prog ~entry =
  let prog = if outline then fst (Outcore.Repeat.run ~rounds:5 prog) else prog in
  let config = { Perfsim.Interp.default_config with model_perf = false } in
  match Perfsim.Interp.run ~config ~entry prog with
  | Ok r -> r.Perfsim.Interp.exit_value
  | Error e -> Alcotest.fail (Perfsim.Interp.error_to_string e)

(* --- the 26 benchmarks + pathological ------------------------------------ *)

let benchmark_case (b : Workload.Benchmarks.t) =
  Alcotest.test_case b.bench_name `Quick (fun () ->
      let m = ok_exn (Swiftlet.Compile.compile_module ~name:"bench" b.source) in
      (match Eval.run ~entry:"main" m with
      | Ok r -> Alcotest.(check int) "eval" b.expected_exit r.exit_value
      | Error e -> Alcotest.fail (Eval.error_to_string e));
      let prog = Codegen.compile_modul m in
      Alcotest.(check int) "machine" b.expected_exit (interp prog ~entry:"main");
      Alcotest.(check int) "outlined" b.expected_exit
        (interp ~outline:true prog ~entry:"main"))

(* --- the app generator ---------------------------------------------------- *)

let small_modules = lazy (ok_exn (Workload.Appgen.generate_modules Workload.Appgen.small))

let test_app_generates () =
  let mods = Lazy.force small_modules in
  Alcotest.(check bool) "several modules" true (List.length mods >= 6);
  List.iter
    (fun (m : Ir.modul) ->
      match Ir.validate m with
      | Ok () -> ()
      | Error e -> Alcotest.fail (m.Ir.m_name ^ ": " ^ e))
    mods

let test_app_legacy_conflict () =
  let mods = Lazy.force small_modules in
  (* The Swift/ObjC mix must fail to link under legacy flag semantics. *)
  match Link.link ~flag_semantics:Link.Legacy ~name:"app" mods with
  | Error (Link.Flag_conflict _) -> ()
  | Ok _ -> Alcotest.fail "legacy link should conflict"
  | Error e -> Alcotest.fail (Link.error_to_string e)

let test_app_pipelines_agree () =
  let mods = Lazy.force small_modules in
  let configs =
    [
      ("per-module 0r", { Pipeline.default_ios_config with outline_rounds = 0;
                          flag_semantics = Link.Attributes });
      ("per-module 5r", { Pipeline.default_ios_config with flag_semantics = Link.Attributes });
      ("wpo 0r", { Pipeline.default_config with outline_rounds = 0 });
      ("wpo 5r", Pipeline.default_config);
      ("wpo 5r interleaved", { Pipeline.default_config with data_order = Link.Interleaved });
    ]
  in
  let results =
    List.map
      (fun (name, config) ->
        let r = ok_exn (Pipeline.build ~config mods) in
        (match Machine.Program.validate r.Pipeline.program with
        | Ok () -> ()
        | Error e -> Alcotest.fail (name ^ ": invalid program: " ^ e));
        (name, interp r.Pipeline.program ~entry:"main"))
      configs
  in
  match results with
  | (_, expected) :: rest ->
    List.iter
      (fun (name, v) -> Alcotest.(check int) (name ^ " agrees") expected v)
      rest
  | [] -> Alcotest.fail "no results"

let test_app_wpo_beats_per_module () =
  let mods = Lazy.force small_modules in
  let pm =
    ok_exn (Pipeline.build ~config:{ Pipeline.default_ios_config with flag_semantics = Link.Attributes } mods)
  in
  let wp = ok_exn (Pipeline.build mods) in
  Alcotest.(check bool) "whole-program is smaller" true
    (wp.Pipeline.code_size < pm.Pipeline.code_size)

let test_app_spans_run () =
  let mods = Lazy.force small_modules in
  let r = ok_exn (Pipeline.build mods) in
  List.iter
    (fun span -> ignore (interp r.Pipeline.program ~entry:span))
    Workload.Appgen.span_entries

let test_growth_monotone () =
  (* More weeks, more code. *)
  let size_at w =
    let profile = Workload.Appgen.at_week Workload.Appgen.small w in
    let mods = ok_exn (Workload.Appgen.generate_modules profile) in
    let r = ok_exn (Pipeline.build ~config:{ Pipeline.default_config with outline_rounds = 0 } mods) in
    r.Pipeline.code_size
  in
  let s0 = size_at 0 and s8 = size_at 8 in
  Alcotest.(check bool) "app grows" true (s8 > s0)

let test_system_module_untouched () =
  let mods = Lazy.force small_modules in
  let r = ok_exn (Pipeline.build mods) in
  List.iter
    (fun (f : Machine.Mfunc.t) ->
      if f.Machine.Mfunc.from_module = "system" then begin
        Alcotest.(check bool) (f.name ^ " marked") true f.Machine.Mfunc.no_outline;
        List.iter
          (fun (b : Machine.Block.t) ->
            Array.iter
              (fun i ->
                match i with
                | Machine.Insn.Bl t when String.length t >= 8 && String.sub t 0 8 = "OUTLINED" ->
                  Alcotest.fail "system code was rewritten by the outliner"
                | _ -> ())
              b.Machine.Block.body)
          f.Machine.Mfunc.blocks
      end)
    r.Pipeline.program.Machine.Program.funcs

(* --- foreign shapes -------------------------------------------------------- *)

let test_foreign_shapes () =
  List.iter
    (fun (name, prog) ->
      (match Machine.Program.validate prog with
      | Ok () -> ()
      | Error e -> Alcotest.fail (name ^ ": " ^ e));
      let before = Machine.Program.code_size_bytes prog in
      let outlined, _ = Outcore.Repeat.run ~rounds:5 prog in
      (match Machine.Program.validate outlined with
      | Ok () -> ()
      | Error e -> Alcotest.fail (name ^ " outlined: " ^ e));
      let after = Machine.Program.code_size_bytes outlined in
      Alcotest.(check bool) (name ^ " shrinks >= 10%") true
        (float_of_int after < 0.9 *. float_of_int before))
    [
      ("clang-like", Workload.Foreign.clang_like ~functions:300 ());
      ("kernel-like", Workload.Foreign.kernel_like ~functions:300 ());
    ]

(* --- core spans ------------------------------------------------------------ *)

let test_corespan_runner () =
  let mods = Lazy.force small_modules in
  let base =
    (ok_exn (Pipeline.build ~config:{ Pipeline.default_ios_config with flag_semantics = Link.Attributes } mods)).Pipeline.program
  in
  let opt = (ok_exn (Pipeline.build mods)).Pipeline.program in
  match
    Workload.Corespans.run_span ~samples:2 ~base ~opt
      ~device:Perfsim.Device.default ~os:Perfsim.Device.default_os "span1"
  with
  | Error e -> Alcotest.fail e
  | Ok (b, o) ->
    Alcotest.(check bool) "positive cycles" true (b > 0. && o > 0.)

(* --- statistics ------------------------------------------------------------ *)

let test_regression () =
  (* y = 3x + 1, exactly. *)
  let pts = List.map (fun x -> (float_of_int x, (3. *. float_of_int x) +. 1.)) [ 0; 1; 2; 5; 9 ] in
  let f = Repro_stats.Regression.linear pts in
  Alcotest.(check (float 1e-9)) "slope" 3. f.Repro_stats.Regression.slope;
  Alcotest.(check (float 1e-9)) "intercept" 1. f.Repro_stats.Regression.intercept;
  Alcotest.(check (float 1e-9)) "r2" 1. f.Repro_stats.Regression.r2;
  Alcotest.(check (float 1e-9)) "predict" 31. (Repro_stats.Regression.predict f 10.)

let test_powerlaw () =
  (* y = 5 x^-2, exactly. *)
  let pts = List.map (fun x -> (float_of_int x, 5. /. float_of_int (x * x))) [ 1; 2; 3; 4; 8; 16 ] in
  let f = Repro_stats.Powerlaw.fit pts in
  Alcotest.(check (float 1e-6)) "a" 5. f.Repro_stats.Powerlaw.a;
  Alcotest.(check (float 1e-6)) "b" (-2.) f.Repro_stats.Powerlaw.b;
  Alcotest.(check (float 1e-6)) "r2" 1. f.Repro_stats.Powerlaw.r2

let test_percentile () =
  Alcotest.(check (float 1e-9)) "p50 odd" 3. (Repro_stats.Percentile.p50 [ 1.; 3.; 5. ]);
  Alcotest.(check (float 1e-9)) "p50 even" 2.5 (Repro_stats.Percentile.p50 [ 1.; 2.; 3.; 4. ]);
  Alcotest.(check (float 1e-9)) "p0" 1. (Repro_stats.Percentile.percentile 0. [ 4.; 1.; 3. ]);
  Alcotest.(check (float 1e-9)) "p100" 4. (Repro_stats.Percentile.percentile 100. [ 4.; 1.; 3. ]);
  Alcotest.(check (float 1e-9)) "geomean" 2. (Repro_stats.Percentile.geomean [ 1.; 2.; 4. ]);
  Alcotest.check_raises "empty" (Invalid_argument "Percentile.percentile: empty sample list")
    (fun () -> ignore (Repro_stats.Percentile.p50 []))

let test_texttable () =
  let t = Repro_stats.Texttable.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "33"; "4" ] ] in
  List.iter
    (fun cell ->
      let rec contains i =
        i + String.length cell <= String.length t
        && (String.sub t i (String.length cell) = cell || contains (i + 1))
      in
      Alcotest.(check bool) ("mentions " ^ cell) true (contains 0))
    [ "a"; "bb"; "1"; "33" ]

(* --- printer round trip ----------------------------------------------------- *)

let test_asm_roundtrip () =
  let mods = Lazy.force small_modules in
  let r = ok_exn (Pipeline.build mods) in
  let prog = r.Pipeline.program in
  let src = Machine.Asm_printer.to_source prog in
  let reparsed = ok_exn (Machine.Asm_parser.parse_program src) in
  Alcotest.(check int) "code size preserved"
    (Machine.Program.code_size_bytes prog)
    (Machine.Program.code_size_bytes reparsed);
  (match Machine.Program.validate reparsed with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("reparsed invalid: " ^ e));
  (* Printing is a fixpoint after one round trip. *)
  Alcotest.(check string) "fixpoint" src (Machine.Asm_printer.to_source reparsed);
  (* And execution agrees. *)
  Alcotest.(check int) "behaviour" (interp prog ~entry:"main") (interp reparsed ~entry:"main")

let () =
  Alcotest.run "workload"
    [
      ( "benchmarks",
        List.map benchmark_case
          (Workload.Benchmarks.all @ [ Workload.Benchmarks.pathological ]) );
      ( "appgen",
        [
          Alcotest.test_case "generates valid modules" `Quick test_app_generates;
          Alcotest.test_case "legacy metadata conflict" `Quick test_app_legacy_conflict;
          Alcotest.test_case "pipelines agree" `Quick test_app_pipelines_agree;
          Alcotest.test_case "wpo beats per-module" `Quick test_app_wpo_beats_per_module;
          Alcotest.test_case "spans run" `Quick test_app_spans_run;
          Alcotest.test_case "growth monotone" `Quick test_growth_monotone;
          Alcotest.test_case "system module untouched" `Quick test_system_module_untouched;
        ] );
      ("foreign", [ Alcotest.test_case "shapes outline" `Quick test_foreign_shapes ]);
      ("corespans", [ Alcotest.test_case "runner" `Quick test_corespan_runner ]);
      ( "stats",
        [
          Alcotest.test_case "linear regression" `Quick test_regression;
          Alcotest.test_case "power law" `Quick test_powerlaw;
          Alcotest.test_case "percentiles" `Quick test_percentile;
          Alcotest.test_case "text table" `Quick test_texttable;
        ] );
      ("printer", [ Alcotest.test_case "asm round trip" `Quick test_asm_roundtrip ]);
    ]
