(* Run the app's core spans (Figure 13 style) on one simulated device and
   report the performance effect of whole-program outlining.

     dune exec examples/span_perf.exe *)

let () =
  let mods =
    match Workload.Appgen.generate_modules Workload.Appgen.uber_rider with
    | Ok m -> m
    | Error e -> failwith e
  in
  let build config =
    match Pipeline.build ~config mods with
    | Ok r -> r.Pipeline.program
    | Error e -> failwith e
  in
  let base =
    build { Pipeline.default_ios_config with flag_semantics = Link.Attributes }
  in
  let opt = build Pipeline.default_config in
  Printf.printf
    "span   baseline cycles  optimized cycles  ratio   icache misses (b->o)\n\
     -----  ---------------  ----------------  ------  --------------------\n";
  let ratios = ref [] in
  List.iter
    (fun span ->
      let config = Perfsim.Interp.default_config in
      match
        ( Perfsim.Interp.run ~config ~args:[ 1 ] ~entry:span base,
          Perfsim.Interp.run ~config ~args:[ 1 ] ~entry:span opt )
      with
      | Ok b, Ok o ->
        let r = float_of_int o.cycles /. float_of_int b.cycles in
        ratios := r :: !ratios;
        Printf.printf "%-5s  %15d  %16d  %.3f   %d -> %d  (%.1f%% dyn outlined)\n" span
          b.cycles o.cycles r b.icache_misses o.icache_misses
          (100. *. float_of_int o.outlined_steps /. float_of_int o.steps)
      | Error e, _ | _, Error e ->
        failwith (span ^ ": " ^ Perfsim.Interp.error_to_string e))
    Workload.Appgen.span_entries;
  Printf.printf "\ngeomean ratio: %.3f (< 1.0 means the optimized app is faster)\n"
    (Repro_stats.Percentile.geomean !ratios)
