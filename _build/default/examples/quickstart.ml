(* Quickstart: outline a small assembly program and watch what happens.

     dune exec examples/quickstart.exe

   Three functions share the same argument-shuffle-then-call prefix — the
   paper's Figure 4 pattern.  One round of machine outlining extracts it. *)

let source =
  {|
extern swift_release
extern print_i64

func release_a:
entry:
  stp fp, lr, [sp, #-16]!
  orr x0, xzr, x20
  bl swift_release
  mov x0, #1
  bl print_i64
  ldp fp, lr, [sp], #16
  ret

func release_b:
entry:
  stp fp, lr, [sp, #-16]!
  orr x0, xzr, x20
  bl swift_release
  mov x0, #2
  bl print_i64
  ldp fp, lr, [sp], #16
  ret

func release_c:
entry:
  stp fp, lr, [sp, #-16]!
  orr x0, xzr, x20
  bl swift_release
  mov x0, #3
  bl print_i64
  ldp fp, lr, [sp], #16
  ret
|}

let () =
  let program =
    match Machine.Asm_parser.parse_program source with
    | Ok p -> p
    | Error e -> failwith e
  in
  Printf.printf "before outlining: %d bytes of code\n\n%s\n"
    (Machine.Program.code_size_bytes program)
    (Machine.Asm_printer.to_source program);
  let outlined, stats = Outcore.Repeat.run ~rounds:5 program in
  Printf.printf "after %d round(s): %d bytes of code\n\n%s\n"
    (List.length stats)
    (Machine.Program.code_size_bytes outlined)
    (Machine.Asm_printer.to_source outlined);
  List.iteri
    (fun i (s : Outcore.Outliner.round_stats) ->
      Printf.printf
        "round %d: outlined %d occurrences into %d new function(s), saving %d bytes\n"
        (i + 1) s.sequences_outlined s.functions_created s.bytes_saved)
    stats
