(* Build a synthetic UberRider-class app through both pipelines and print a
   size report, then execute the app's main through the interpreter under
   both builds to demonstrate they behave identically.

     dune exec examples/app_size_report.exe *)

let () =
  let profile = Workload.Appgen.uber_rider in
  Printf.printf "generating %s (%d feature modules, %d vendor libraries)...\n%!"
    profile.Workload.Appgen.app_name profile.n_modules profile.n_vendor;
  let mods =
    match Workload.Appgen.generate_modules profile with
    | Ok m -> m
    | Error e -> failwith e
  in
  let per_module_cfg =
    { Pipeline.default_ios_config with flag_semantics = Link.Attributes }
  in
  let build name config =
    match Pipeline.build ~config mods with
    | Ok r ->
      Printf.printf "%-34s binary %8d B   code %8d B\n" name r.Pipeline.binary_size
        r.Pipeline.code_size;
      r
    | Error e -> failwith e
  in
  Printf.printf "\n";
  let _none = build "whole-program, no outlining" { Pipeline.default_config with outline_rounds = 0 } in
  let base = build "default iOS (per-module, 5 rounds)" per_module_cfg in
  let wpo = build "whole-program, 5 rounds" Pipeline.default_config in
  Printf.printf "\nwhole-program outlining saves %.1f%% of code over the default pipeline\n"
    (100.
    *. float_of_int (base.Pipeline.code_size - wpo.Pipeline.code_size)
    /. float_of_int base.Pipeline.code_size);
  (* Legacy metadata semantics cannot even link this Swift+ObjC mix. *)
  (match Pipeline.build ~config:{ Pipeline.default_config with flag_semantics = Link.Legacy } mods with
  | Error e -> Printf.printf "\nwith legacy metadata semantics, linking fails (§VI-2):\n  %s\n" e
  | Ok _ -> print_endline "unexpected: legacy link succeeded");
  (* Both binaries must behave identically. *)
  let config = { Perfsim.Interp.default_config with model_perf = false } in
  match
    ( Perfsim.Interp.run ~config ~entry:"main" base.Pipeline.program,
      Perfsim.Interp.run ~config ~entry:"main" wpo.Pipeline.program )
  with
  | Ok a, Ok b ->
    Printf.printf "\napp main(): %d (default build) vs %d (optimized build) %s\n"
      a.exit_value b.exit_value
      (if a.exit_value = b.exit_value then "- identical" else "- MISMATCH!")
  | Error e, _ | _, Error e -> failwith (Perfsim.Interp.error_to_string e)
