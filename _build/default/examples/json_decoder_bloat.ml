(* The paper's Listing 10 story, end to end: a Swift-style class whose
   throwing initializer decodes many properties.  Each `try` spawns an
   error edge into a cleanup block with one Init-flag phi per reference
   property; out-of-SSA expands those phis into the copy bursts of
   Listing 11, and machine outlining claws the bytes back.

     dune exec examples/json_decoder_bloat.exe *)

let class_source n_fields =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    {|
func fetch(json: [Int], k: Int) throws -> [Int] {
  if k >= len(json) { throw }
  if json[k] < 0 { throw }
  let a = array(json[k] % 6 + 1)
  a[0] = json[k]
  return a
}
class Payload {
|};
  for k = 0 to n_fields - 1 do
    Buffer.add_string buf (Printf.sprintf "  var p%d: [Int]\n" k)
  done;
  Buffer.add_string buf "  init(json: [Int]) throws {\n";
  for k = 0 to n_fields - 1 do
    Buffer.add_string buf (Printf.sprintf "    self.p%d = try fetch(json, %d)\n" k k)
  done;
  Buffer.add_string buf "  }\n}\n";
  Buffer.add_string buf
    {|
func main() -> Int {
  let json = array(200)
  for i in 0 ..< 200 { json[i] = i }
  let ok = try? Payload(json)
  let bad = try? Payload(array(3))
  if ok == 0 { return 0 - 1 }
  if bad == 0 { return 1 } else { return 0 - 2 }
}
|};
  Buffer.contents buf

let measure n_fields =
  let src = class_source n_fields in
  let m =
    match Swiftlet.Compile.compile_module ~name:"decoder" src with
    | Ok m -> m
    | Error e -> failwith e
  in
  let prog = Codegen.compile_modul m in
  let outlined, _ = Outcore.Repeat.run ~rounds:5 prog in
  let init = Option.get (Ir.find_func m "Payload_init") in
  let cleanup_copies = Out_of_ssa.copies_inserted init in
  ( Machine.Program.code_size_bytes prog,
    Machine.Program.code_size_bytes outlined,
    cleanup_copies )

let () =
  Printf.printf
    "fields | code bytes | outlined | saving | out-of-SSA copies in init\n\
     -------+------------+----------+--------+--------------------------\n";
  List.iter
    (fun n ->
      let before, after, copies = measure n in
      Printf.printf "%6d | %10d | %8d | %5.1f%% | %d\n" n before after
        (100. *. float_of_int (before - after) /. float_of_int before)
        copies)
    [ 4; 8; 16; 32; 64; 118 ];
  (* Run the 118-field decoder for real, before and after outlining. *)
  let src = class_source 118 in
  let m =
    match Swiftlet.Compile.compile_module ~name:"decoder" src with
    | Ok m -> m
    | Error e -> failwith e
  in
  let prog = Codegen.compile_modul m in
  let outlined, _ = Outcore.Repeat.run ~rounds:5 prog in
  let config = { Perfsim.Interp.default_config with model_perf = false } in
  (match
     ( Perfsim.Interp.run ~config ~entry:"main" prog,
       Perfsim.Interp.run ~config ~entry:"main" outlined )
   with
  | Ok a, Ok b ->
    Printf.printf
      "\n118-field decoder runs: exit %d before, %d after outlining %s\n"
      a.exit_value b.exit_value
      (if a.exit_value = b.exit_value then "(identical, as it must be)" else "(MISMATCH!)")
  | Error e, _ | _, Error e -> failwith (Perfsim.Interp.error_to_string e));
  print_endline
    "\nThe number of out-of-SSA copies grows quadratically with the number of\n\
     try-initialized properties (the paper's Figure 9 / Listing 11).  The\n\
     outliner recovers many of those bytes; for very wide classes the copy\n\
     bursts spill to unique stack slots and the recoverable share tapers,\n\
     which is why the paper treats this pattern as a source-level smell too."
