examples/json_decoder_bloat.ml: Buffer Codegen Ir List Machine Option Out_of_ssa Outcore Perfsim Printf Swiftlet
