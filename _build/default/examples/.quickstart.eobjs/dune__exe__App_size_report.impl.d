examples/app_size_report.ml: Link Perfsim Pipeline Printf Workload
