examples/quickstart.ml: List Machine Outcore Printf
