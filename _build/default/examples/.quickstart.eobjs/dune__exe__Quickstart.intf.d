examples/quickstart.mli:
