examples/app_size_report.mli:
