examples/json_decoder_bloat.mli:
