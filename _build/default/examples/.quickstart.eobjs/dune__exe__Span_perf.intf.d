examples/span_perf.mli:
