examples/span_perf.ml: Link List Perfsim Pipeline Printf Repro_stats Workload
