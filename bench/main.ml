(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation.  Run with no arguments for everything, or name experiments:

     dune exec bench/main.exe -- fig1 table1 fig5 fig6 fig7 fig8 fig11 fig12
                                 table2 fig13 table3 table4 buildtime
                                 outline_bench layout_bench apps foreign
                                 datalayout ablate micro

   Results worth keeping are also summarized in EXPERIMENTS.md. *)

let table = Repro_stats.Texttable.render
let title t = print_string (Repro_stats.Texttable.render_title t)
let pct a b = 100. *. (float_of_int a -. float_of_int b) /. float_of_int a

let ok_exn = function
  | Ok x -> x
  | Error e -> failwith e

(* Shared builds, computed once. *)
let rider_modules =
  lazy (ok_exn (Workload.Appgen.generate_modules Workload.Appgen.uber_rider))

let per_module_cfg =
  { Pipeline.default_ios_config with flag_semantics = Link.Attributes }

let build ?(config = Pipeline.default_config) mods = ok_exn (Pipeline.build ~config mods)

(* Bench configurations are pipeline strings, same grammar as
   [sizeopt build --passes]: what a row measures is what its spec says. *)
let cfg_of_passes ?base spec = ok_exn (Pipeline.config_of_passes ?base spec)
let build_passes ?base spec mods = build ~config:(cfg_of_passes ?base spec) mods

let rider_baseline = lazy (build ~config:per_module_cfg (Lazy.force rider_modules))
let rider_wpo = lazy (build (Lazy.force rider_modules))

let rider_unoutlined = lazy (build_passes "dce" (Lazy.force rider_modules))

let passes_for_rounds rounds =
  if rounds = 0 then "dce" else Printf.sprintf "dce,outline(rounds=%d)" rounds

let rider_report =
  lazy (Outcore.Analysis.analyze (Lazy.force rider_unoutlined).Pipeline.program)

(* ------------------------------------------------------------------ E1 *)

let fig1 () =
  title "Figure 1: code-size growth over time (weeks), baseline vs optimized";
  let weeks = [ 0; 2; 4; 6; 8; 10; 12; 14 ] in
  let rows = ref [] in
  let base_pts = ref [] and opt_pts = ref [] in
  List.iter
    (fun w ->
      let profile = Workload.Appgen.at_week Workload.Appgen.uber_rider w in
      let mods = ok_exn (Workload.Appgen.generate_modules profile) in
      let b = build ~config:per_module_cfg mods in
      let o = build mods in
      base_pts := (float_of_int w, float_of_int b.Pipeline.code_size) :: !base_pts;
      opt_pts := (float_of_int w, float_of_int o.Pipeline.code_size) :: !opt_pts;
      rows :=
        [
          string_of_int w;
          string_of_int b.Pipeline.code_size;
          string_of_int o.Pipeline.code_size;
          Printf.sprintf "%.1f%%" (pct b.Pipeline.code_size o.Pipeline.code_size);
        ]
        :: !rows)
    weeks;
  print_string
    (table
       ~header:[ "week"; "baseline code B"; "optimized code B"; "saving" ]
       (List.rev !rows));
  let fb = Repro_stats.Regression.linear !base_pts in
  let fo = Repro_stats.Regression.linear !opt_pts in
  Printf.printf
    "baseline slope: %.0f B/week (R2 %.3f)\noptimized slope: %.0f B/week (R2 %.3f)\n\
     growth-rate reduction: %.2fx   [paper: ~2x, slopes 2.7 vs 1.37]\n"
    fb.Repro_stats.Regression.slope fb.Repro_stats.Regression.r2
    fo.Repro_stats.Regression.slope fo.Repro_stats.Regression.r2
    (fb.Repro_stats.Regression.slope /. fo.Repro_stats.Regression.slope)

(* ------------------------------------------------------------------ E2 *)

let table1 () =
  title "Table I: the landscape of binary-size savings, level by level";
  let mods = Lazy.force rider_modules in
  let base = (Lazy.force rider_unoutlined).Pipeline.code_size in
  let with_passes name spec =
    let r = build_passes spec mods in
    (name, r.Pipeline.code_size)
  in
  (* AST-level clone detection on the generated sources. *)
  let sources = Workload.Appgen.generate_sources Workload.Appgen.uber_rider in
  let asts =
    List.filter_map
      (fun (name, src) ->
        match Swiftlet.Parser.parse_module ~name src with
        | Ok a -> Some a
        | Error _ -> None)
      sources
  in
  let clones = Swiftlet.Clone_detect.analyze asts in
  let rows =
    [
      [ "AST"; "source clone detection (PMD)";
        Printf.sprintf "%.2f%% function replication" (100. *. clones.clone_fraction);
        "<1% replication" ];
    ]
    @ (let name, sz = with_passes "SIL outlining" "dce,sil-outline(min=8)" in
       [ [ "SIL"; name; Printf.sprintf "%.2f%% size saving" (pct base sz); "0.41%" ] ])
    @ (let name, sz = with_passes "MergeFunction" "dce,merge-functions" in
       [ [ "LLVM-IR"; name; Printf.sprintf "%.2f%% size saving" (pct base sz); "0.9%" ] ])
    @ (let name, sz = with_passes "FMSA" "dce,fmsa" in
       [ [ "LLVM-IR"; name; Printf.sprintf "%.2f%% size saving" (pct base sz); "2%" ] ])
    @ (* Global merging is measured in the per-module (iOS production)
         pipeline, where its cross-module reach is real: under whole-program
         linking FMSA already sees every clone, so the whole-program numbers
         cannot separate the two.  The comparison is therefore against the
         per-module merge stack, and the gate below demands a strict win. *)
    (let pm_spec spec =
       (build_passes ~base:per_module_cfg spec mods).Pipeline.code_size
     in
     let pm_base = pm_spec "dce" in
     let pm_merge = pm_spec "dce,merge-functions,fmsa" in
     let pm_gm = pm_spec "dce,merge-functions,fmsa,global-merge" in
     if pm_gm >= pm_merge then
       failwith
         (Printf.sprintf
            "table1 gate: global-merge must strictly shrink the per-module \
             merge stack (dce,merge-functions,fmsa %d B vs +global-merge %d B)"
            pm_merge pm_gm);
     let json =
       Printf.sprintf
         "{\n\
         \  \"app\": \"uber_rider\",\n\
         \  \"mode\": \"per-module\",\n\
         \  \"text_dce\": %d,\n\
         \  \"text_merge_fmsa\": %d,\n\
         \  \"text_merge_fmsa_global\": %d,\n\
         \  \"global_merge_gate\": \"text_merge_fmsa_global < text_merge_fmsa\",\n\
         \  \"gate_passed\": true\n\
          }\n"
         pm_base pm_merge pm_gm
     in
     let oc = open_out "BENCH_table1.json" in
     output_string oc json;
     close_out oc;
     Printf.printf "wrote BENCH_table1.json\n";
     [
       [ "LLVM-IR"; "global function merging (optimistic, per-module mode)";
         Printf.sprintf "%.2f%% size saving over merge+FMSA (%d B -> %d B)"
           (pct pm_merge pm_gm) pm_merge pm_gm;
         "n/a (CGO'21 companion)" ];
     ])
    @
    let wpo = Lazy.force rider_wpo in
    let baseline = Lazy.force rider_baseline in
    [
      [ "ISA"; "repeated machine outlining (vs per-module baseline)";
        Printf.sprintf "%.1f%% size reduction"
          (pct baseline.Pipeline.code_size wpo.Pipeline.code_size);
        "23%" ];
    ]
  in
  print_string (table ~header:[ "Level"; "Optimization"; "Measured"; "Paper" ] rows)

(* ------------------------------------------------------------------ E3 *)

let fig5 () =
  title "Figure 5: pattern repetition frequency follows a power law";
  let r = Lazy.force rider_report in
  let pts =
    Array.to_list
      (Array.map
         (fun (p : Outcore.Analysis.pattern_stat) ->
           (float_of_int p.rank, float_of_int p.frequency))
         r.patterns)
  in
  let fit = Repro_stats.Powerlaw.fit pts in
  Printf.printf
    "profitable patterns: %d   candidates: %d\n\
     power-law fit: freq = %.1f * rank^%.3f   (log-log R2 = %.3f)\n\
     [paper: power law with 99.4%% confidence]\n\n"
    (Array.length r.patterns) r.candidates_total fit.Repro_stats.Powerlaw.a
    fit.Repro_stats.Powerlaw.b fit.Repro_stats.Powerlaw.r2;
  let sample_ranks = [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 ] in
  let rows =
    List.filter_map
      (fun rank ->
        if rank <= Array.length r.patterns then
          let p = r.patterns.(rank - 1) in
          Some
            [ string_of_int rank; string_of_int p.frequency; string_of_int p.length;
              Printf.sprintf "%.0f" (Repro_stats.Powerlaw.predict fit (float_of_int rank)) ]
        else None)
      sample_ranks
  in
  print_string (table ~header:[ "rank"; "frequency"; "length"; "fit" ] rows);
  Printf.printf "fraction of candidates ending in call/ret: %.1f%% [paper: 67%%]\n"
    (100. *. r.call_or_ret_fraction)

(* ------------------------------------------------------------------ E4 *)

let fig6 () =
  title "Figure 6: fractal structure - frequency clusters vs length diversity";
  let r = Lazy.force rider_report in
  let clusters = Hashtbl.create 64 in
  Array.iter
    (fun (p : Outcore.Analysis.pattern_stat) ->
      let lens = Option.value ~default:[] (Hashtbl.find_opt clusters p.frequency) in
      Hashtbl.replace clusters p.frequency (p.length :: lens))
    r.patterns;
  let sorted =
    Hashtbl.fold (fun f lens acc -> (f, lens) :: acc) clusters []
    |> List.sort (fun (a, _) (b, _) -> Int.compare b a)
  in
  let rows =
    List.filteri (fun i _ -> i < 18) sorted
    |> List.map (fun (freq, lens) ->
           let n = List.length lens in
           let mx = List.fold_left max 0 lens in
           let mn = List.fold_left min max_int lens in
           [ string_of_int freq; string_of_int n; string_of_int mn; string_of_int mx ])
  in
  print_string
    (table ~header:[ "frequency"; "#patterns"; "min len"; "max len" ] rows);
  print_endline
    "[paper: higher-frequency clusters have few, short patterns; lower-frequency\n\
    \ clusters have progressively more patterns and longer maxima]"

(* ------------------------------------------------------------------ E5 *)

let fig7 () =
  title "Figure 7: cumulative size savings vs number of patterns outlined";
  let r = Lazy.force rider_report in
  let curve = Outcore.Analysis.cumulative_savings r in
  let total = if Array.length curve = 0 then 0 else snd curve.(Array.length curve - 1) in
  let rows =
    List.map
      (fun frac ->
        let n = Outcore.Analysis.patterns_needed_for r frac in
        [ Printf.sprintf "%.0f%%" (frac *. 100.); string_of_int n ])
      [ 0.5; 0.75; 0.9; 0.99; 1.0 ]
  in
  print_string (table ~header:[ "fraction of total saving"; "#patterns needed" ] rows);
  Printf.printf "total potential saving: %d bytes across %d patterns\n" total
    (Array.length r.patterns);
  Printf.printf "patterns needed for 90%%: %d  [paper: > 10^2 - no small hard-coded set suffices]\n"
    (Outcore.Analysis.patterns_needed_for r 0.9)

(* ------------------------------------------------------------------ E6 *)

let fig8 () =
  title "Figure 8: histogram of candidates by sequence length";
  let r = Lazy.force rider_report in
  let hist = Outcore.Analysis.length_histogram r in
  let tail = List.fold_left (fun a (len, n) -> if len > 12 then a + n else a) 0 hist in
  let rows =
    List.filter_map
      (fun (len, n) ->
        if len <= 12 then Some [ string_of_int len; string_of_int n ] else None)
      hist
    @ [ [ ">12"; string_of_int tail ] ]
  in
  print_string (table ~header:[ "sequence length"; "#candidates" ] rows);
  (match r.longest with
  | Some l ->
    Printf.printf "longest repeating pattern: %d instructions, repeats %d times\n"
      l.length l.frequency
  | None -> ());
  print_endline "[paper: length-2 dominates; longest = 279 insns repeating 3x]"

(* ------------------------------------------------------------------ E7 *)

let fig11 () =
  title "Figure 11: greedy vs repeated outlining on the BCD/ABCD example";
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "extern ext\n";
  let a = "mov x10, #100" and b = "mov x11, #111" in
  let c = "mov x12, #122" and d = "mov x13, #133" in
  let pro = "  stp fp, lr, [sp, #-16]!\n" in
  let epi = "  ldp fp, lr, [sp], #16\n" in
  for i = 1 to 8 do
    Buffer.add_string buf
      (Printf.sprintf "func bcd%d:\nentry:\n%s  mov x9, #%d\n  %s\n  %s\n  %s\n  mov x8, #%d\n%s  b ext\n"
         i pro i b c d (1000 + i) epi)
  done;
  for i = 1 to 5 do
    Buffer.add_string buf
      (Printf.sprintf
         "func abcd%d:\nentry:\n%s  mov x9, #%d\n  %s\n  %s\n  %s\n  %s\n  mov x8, #%d\n%s  b ext\n"
         i pro (100 + i) a b c d (2000 + i) epi)
  done;
  let p =
    match Machine.Asm_parser.parse_program (Buffer.contents buf) with
    | Ok p -> p
    | Error e -> failwith e
  in
  let p1, _ = Outcore.Repeat.run ~rounds:1 p in
  let p5, stats5 = Outcore.Repeat.run ~rounds:5 p in
  let rows =
    [
      [ "original"; string_of_int (Machine.Program.code_size_bytes p); "-" ];
      [ "greedy (1 round)"; string_of_int (Machine.Program.code_size_bytes p1);
        "picks BCD first, discards ABCD" ];
      [ Printf.sprintf "repeated (%d rounds)" (List.length stats5);
        string_of_int (Machine.Program.code_size_bytes p5);
        "recovers [A; bl BCD] in round 2" ];
    ]
  in
  print_string (table ~header:[ "variant"; "code bytes"; "note" ] rows);
  print_endline
    "[paper's idealized counts: 44 insns -> 16 greedy -> 15 with the cascade]"

(* ------------------------------------------------------------------ E8 *)

let fig12 () =
  title "Figure 12: size vs rounds of outlining, intra-module vs whole-program";
  let mods = Lazy.force rider_modules in
  let rows = ref [] in
  for rounds = 0 to 6 do
    let pm = build_passes ~base:per_module_cfg (passes_for_rounds rounds) mods in
    let wp = build_passes (passes_for_rounds rounds) mods in
    rows :=
      [
        string_of_int rounds;
        string_of_int pm.Pipeline.binary_size;
        string_of_int pm.Pipeline.code_size;
        string_of_int wp.Pipeline.binary_size;
        string_of_int wp.Pipeline.code_size;
      ]
      :: !rows
  done;
  print_string
    (table
       ~header:
         [ "rounds"; "intra binary"; "intra code"; "whole-prog binary"; "whole-prog code" ]
       (List.rev !rows));
  let pm5 = Lazy.force rider_baseline and wp5 = Lazy.force rider_wpo in
  Printf.printf
    "whole-program vs per-module at 5 rounds: %.1f%% code saving  [paper: 13.7%% gap,\n\
     22.8%% total vs the default pipeline]\n"
    (pct pm5.Pipeline.code_size wp5.Pipeline.code_size)

(* ------------------------------------------------------------------ E9 *)

let table2 () =
  title "Table II: outlining statistics at different levels of repeats";
  let wpo = Lazy.force rider_wpo in
  let cum = Outcore.Repeat.cumulative wpo.Pipeline.outline_stats in
  let rows =
    List.mapi
      (fun i (s : Outcore.Outliner.round_stats) ->
        [
          string_of_int (i + 1);
          string_of_int s.sequences_outlined;
          string_of_int s.functions_created;
          string_of_int s.outlined_bytes;
        ])
      cum
  in
  print_string
    (table
       ~header:[ "rounds"; "#sequences outlined"; "#functions created"; "outlined bytes" ]
       rows);
  print_endline
    "[paper at 5 rounds: 4.71M sequences, 259K functions, 3.53MB - on a 114MB app]"

(* ----------------------------------------------------------- E10/E11 *)

let heatmap_reports =
  lazy
    (let base = (Lazy.force rider_baseline).Pipeline.program in
     let opt = (Lazy.force rider_wpo).Pipeline.program in
     ok_exn
       (Workload.Corespans.heatmap ~samples:2 ~base ~opt
          ~spans:Workload.Appgen.span_entries ()))

let fig13 () =
  title "Figure 13: core-span P50 ratio heatmap (optimized / baseline)";
  let reports = Lazy.force heatmap_reports in
  List.iter
    (fun (r : Workload.Corespans.span_report) ->
      Printf.printf "\n%s\n" r.span;
      let devices =
        List.sort_uniq compare (List.map (fun (c : Workload.Corespans.cell) -> c.device) r.cells)
      in
      let oses =
        List.sort_uniq compare (List.map (fun (c : Workload.Corespans.cell) -> c.os) r.cells)
      in
      let rows =
        List.map
          (fun d ->
            d
            :: List.map
                 (fun os ->
                   match
                     List.find_opt
                       (fun (c : Workload.Corespans.cell) -> c.device = d && c.os = os)
                       r.cells
                   with
                   | Some c -> Printf.sprintf "%.3f" c.ratio
                   | None -> "-")
                 oses)
          devices
      in
      print_string (table ~header:("device \\ OS" :: oses) rows))
    reports;
  Printf.printf
    "\ngeomean ratio over all cells: %.3f  [paper: 0.966, i.e. 3.4%% gain; short\n\
     hot spans may regress slightly]\n"
    (Workload.Corespans.geomean_ratio reports)

let table3 () =
  title "Table III: average execution time of core spans (simulated seconds)";
  let reports = Lazy.force heatmap_reports in
  let rows =
    List.map
      (fun (r : Workload.Corespans.span_report) ->
        [
          r.span;
          Printf.sprintf "%.3f" r.base_seconds;
          Printf.sprintf "%.3f" r.opt_seconds;
        ])
      reports
  in
  print_string (table ~header:[ "span"; "baseline"; "optimized" ] rows)

(* ----------------------------------------------------------------- E14 *)

let table4 () =
  title "Table IV: performance overhead of 5 rounds of outlining, 26 benchmarks";
  let rows = ref [] in
  let overheads = ref [] in
  List.iter
    (fun (b : Workload.Benchmarks.t) ->
      let m = ok_exn (Swiftlet.Compile.compile_module ~name:"bench" b.source) in
      let prog = Codegen.compile_modul m in
      let prog5, _ = Outcore.Repeat.run ~rounds:5 prog in
      let config = Perfsim.Interp.default_config in
      match
        ( Perfsim.Interp.run ~config ~entry:"main" prog,
          Perfsim.Interp.run ~config ~entry:"main" prog5 )
      with
      | Ok a, Ok o ->
        assert (a.exit_value = b.expected_exit);
        assert (o.exit_value = b.expected_exit);
        let ov = 100. *. (float_of_int o.cycles -. float_of_int a.cycles) /. float_of_int a.cycles in
        overheads := ov :: !overheads;
        rows :=
          [
            b.bench_name;
            Printf.sprintf "%+.2f%%" ov;
            string_of_int (Machine.Program.code_size_bytes prog);
            string_of_int (Machine.Program.code_size_bytes prog5);
          ]
          :: !rows
      | Error e, _ | _, Error e ->
        failwith (b.bench_name ^ ": " ^ Perfsim.Interp.error_to_string e))
    (Workload.Benchmarks.all @ [ Workload.Benchmarks.pathological ]);
  print_string
    (table ~header:[ "benchmark"; "%overhead"; "code B"; "outlined code B" ]
       (List.rev !rows));
  let n = List.length !overheads in
  Printf.printf
    "average overhead: %.2f%%  [paper: 1.63%%/1.83%%; pathological case 8.67%%]\n"
    (List.fold_left ( +. ) 0. !overheads /. float_of_int n)

(* ----------------------------------------------------------------- E11 *)

let buildtime () =
  title "Build time: pipeline phases (seconds), per SVII-C";
  let mods = Lazy.force rider_modules in
  let rows = ref [] in
  List.iter
    (fun rounds ->
      let r = build_passes (passes_for_rounds rounds) mods in
      let phase name =
        match List.assoc_opt name r.Pipeline.timings with
        | Some t -> Printf.sprintf "%.2f" t
        | None -> "-"
      in
      let total = List.fold_left (fun a (_, t) -> a +. t) 0. r.Pipeline.timings in
      rows :=
        [
          string_of_int rounds;
          phase "llvm-link";
          phase "opt";
          phase "llc";
          phase "machine-outliner";
          phase "system-linker";
          Printf.sprintf "%.2f" total;
        ]
        :: !rows)
    [ 0; 1; 2; 5 ];
  let d = build ~config:per_module_cfg mods in
  let dtotal = List.fold_left (fun a (_, t) -> a +. t) 0. d.Pipeline.timings in
  print_string
    (table
       ~header:[ "rounds"; "llvm-link"; "opt"; "llc"; "outliner"; "linker"; "total" ]
       (List.rev !rows));
  Printf.printf
    "default (per-module) pipeline total: %.2fs\n\
     [paper: default 21 min; new pipeline 53 min + ~7 min/round, 66 min at 5 rounds]\n"
    dtotal;
  (* Incremental vs from-scratch outliner engine on the same machine
     program (the llc output, before outlining), best of two runs each.
     The byte-identity and the >= 2x speedup are hard assertions, not
     eyeballed numbers. *)
  let machine = (Lazy.force rider_unoutlined).Pipeline.program in
  let time_engine engine =
    let once () =
      let prof = Outcore.Profile.create () in
      let t0 = Unix.gettimeofday () in
      let p, _ = Outcore.Repeat.run ~profile:prof ~engine ~rounds:5 machine in
      (Unix.gettimeofday () -. t0, p, prof)
    in
    let (t1, p, prof) = once () in
    let (t2, _, _) = once () in
    (Float.min t1 t2, p, prof)
  in
  let ts, ps, _ = time_engine `Scratch in
  let ti, pi, prof_i = time_engine `Incremental in
  let speedup = ts /. ti in
  Printf.printf
    "\nuber_rider outliner, 5 rounds: scratch %.2fs, incremental %.2fs \
     (%.1fx speedup)\n"
    ts ti speedup;
  print_string (Outcore.Profile.render prof_i);
  if Machine.Asm_printer.to_source ps <> Machine.Asm_printer.to_source pi then
    failwith "buildtime: incremental and scratch outliner outputs differ";
  if speedup < 2.0 then
    failwith
      (Printf.sprintf "buildtime: incremental speedup %.2fx is below the 2x bar"
         speedup);
  Printf.printf "engines byte-identical; speedup %.1fx clears the 2x bar\n"
    speedup

(* ------------------------------------------------------- outline bench *)

(* Wall time and code size for both outliner engines across round counts,
   emitted as BENCH_outline.json (schema documented in README) so CI can
   track the perf trajectory.  Exits nonzero if the engines ever diverge. *)
let outline_bench () =
  title "Outliner engine benchmark: scratch vs incremental (uber_rider)";
  let machine = (Lazy.force rider_unoutlined).Pipeline.program in
  let src = Machine.Asm_printer.to_source in
  let run_engine engine rounds =
    let prof = Outcore.Profile.create () in
    let t0 = Unix.gettimeofday () in
    let p, stats = Outcore.Repeat.run ~profile:prof ~engine ~rounds machine in
    (Unix.gettimeofday () -. t0, p, stats, prof)
  in
  let rounds_list = [ 1; 3; 5 ] in
  let results =
    List.concat_map
      (fun rounds ->
        List.map
          (fun (ename, engine) ->
            let wall, p, stats, prof = run_engine engine rounds in
            (ename, rounds, wall, p, stats, prof))
          [ ("scratch", `Scratch); ("incremental", `Incremental) ])
      rounds_list
  in
  let find ename rounds =
    List.find (fun (e, r, _, _, _, _) -> e = ename && r = rounds) results
  in
  let identical =
    List.for_all
      (fun rounds ->
        let _, _, _, ps, _, _ = find "scratch" rounds in
        let _, _, _, pi, _, _ = find "incremental" rounds in
        src ps = src pi)
      rounds_list
  in
  print_string
    (table
       ~header:[ "engine"; "rounds"; "wall s"; "code B"; "funcs" ]
       (List.map
          (fun (ename, rounds, wall, p, stats, _) ->
            [
              ename;
              string_of_int rounds;
              Printf.sprintf "%.3f" wall;
              string_of_int (Machine.Program.code_size_bytes p);
              string_of_int
                (List.fold_left
                   (fun a (s : Outcore.Outliner.round_stats) ->
                     a + s.functions_created)
                   0 stats);
            ])
          results));
  let ts, ti =
    let s, _, ws, _, _, _ = find "scratch" 5 in
    let i, _, wi, _, _, _ = find "incremental" 5 in
    ignore s;
    ignore i;
    (ws, wi)
  in
  let speedup = ts /. ti in
  Printf.printf "identical outputs: %b   r5 speedup: %.2fx\n" identical speedup;
  (* Hand-rolled JSON: no JSON library in the build environment. *)
  let json_config (ename, rounds, wall, p, stats, prof) =
    Printf.sprintf
      "    {\"engine\":\"%s\",\"rounds\":%d,\"wall_s\":%.6f,\"code_size\":%d,\
       \"binary_size\":%d,\"functions_created\":%d,\"rounds_profile\":%s}"
      ename rounds wall
      (Machine.Program.code_size_bytes p)
      (Linker.binary_size (Linker.link p))
      (List.fold_left
         (fun a (s : Outcore.Outliner.round_stats) -> a + s.functions_created)
         0 stats)
      (Outcore.Profile.to_json prof)
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"app\": \"uber_rider\",\n\
      \  \"default_rounds\": 5,\n\
      \  \"configs\": [\n\
       %s\n\
      \  ],\n\
      \  \"speedup_r5\": %.3f,\n\
      \  \"identical\": %b\n\
       }\n"
      (String.concat ",\n" (List.map json_config results))
      speedup identical
  in
  let oc = open_out "BENCH_outline.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_outline.json\n";
  if not identical then
    failwith "outline_bench: incremental and scratch outputs diverge"

(* ------------------------------------------------------- thin-WPO bench *)

(* Thin-WPO worker sweep on a scaled appgen app, against the full
   whole-program build: byte-identity across worker counts, image within
   1% of full WPO, and the parallel speedup.  CI containers are often
   single-core, so the headline speedup is Amdahl-modeled from the
   workers=1 run's measured per-shard timings — the engine's serial part
   is the global decision rounds, the parallel part the per-shard
   discovery and rewrite, and T(w) = serial + parallel/w — while measured
   wall-clock for every sweep point is recorded alongside (it only means
   anything on a >= 4-core host; the JSON records the core count).
   Emits BENCH_thinwpo.json. *)
let thinwpo_impl ~profile ~mult ~workers_list ~min_speedup () =
  let prof = Workload.Appgen.scaled ~mult profile in
  title
    (Printf.sprintf "Thin-WPO worker sweep: %s (%d modules)"
       prof.Workload.Appgen.app_name prof.Workload.Appgen.n_modules);
  let mods = ok_exn (Workload.Appgen.generate_modules prof) in
  let timed_build config =
    let t0 = Unix.gettimeofday () in
    let r = build ~config mods in
    (Unix.gettimeofday () -. t0, r)
  in
  let full_wall, full = timed_build Pipeline.default_config in
  let runs =
    List.map
      (fun w ->
        let wall, r =
          timed_build
            { Pipeline.default_config with mode = Pipeline.Thin_wpo { workers = w } }
        in
        (w, wall, r))
      workers_list
  in
  let src (r : Pipeline.result) = Machine.Asm_printer.to_source r.program in
  let identical =
    match runs with
    | [] -> true
    | (_, _, first) :: rest ->
      List.for_all (fun (_, _, r) -> src r = src first) rest
  in
  (* Amdahl split from the workers=1 report (every report is identical in
     shape; workers=1 keeps the shard timings uninflated by contention). *)
  let _, _, thin1 =
    List.find (fun (w, _, _) -> w = List.hd workers_list) runs
  in
  let serial_s, parallel_s =
    List.fold_left
      (fun (ser, par) (rd : Thinwpo.Engine.Report.round) ->
        let shard_t =
          List.fold_left
            (fun a (s : Thinwpo.Engine.Report.shard) ->
              a +. s.rs_discover +. s.rs_rewrite)
            0. rd.rr_shards
        in
        (ser +. rd.rr_decide, par +. shard_t))
      (0., 0.)
      (Thinwpo.Engine.Report.rounds thin1.Pipeline.thin_profile)
  in
  let modeled w = (serial_s +. parallel_s) /. (serial_s +. (parallel_s /. float_of_int w)) in
  let thin_size = (fun (_, _, r) -> r.Pipeline.binary_size) (List.hd runs) in
  print_string
    (table
       ~header:[ "build"; "wall s"; "binary B"; "modeled speedup" ]
       (( [ "full wp"; Printf.sprintf "%.2f" full_wall;
            string_of_int full.Pipeline.binary_size; "-" ] )
       :: List.map
            (fun (w, wall, r) ->
              [
                Printf.sprintf "thin w=%d" w;
                Printf.sprintf "%.2f" wall;
                string_of_int r.Pipeline.binary_size;
                Printf.sprintf "%.2fx" (modeled w);
              ])
            runs));
  Printf.printf
    "identical across workers: %b   engine serial %.3fs / parallel %.3fs   \
     size vs full: %+.2f%%   (host cores: %d)\n"
    identical serial_s parallel_s
    (-.pct full.Pipeline.binary_size thin_size)
    (Domain.recommended_domain_count ());
  let json =
    Printf.sprintf
      "{\n\
      \  \"app\": \"%s\",\n\
      \  \"modules\": %d,\n\
      \  \"rounds\": %d,\n\
      \  \"host_cores\": %d,\n\
      \  \"full_wpo\": {\"wall_s\":%.6f,\"binary_size\":%d},\n\
      \  \"sweep\": [\n\
       %s\n\
      \  ],\n\
      \  \"modeled\": {\"serial_s\":%.6f,\"parallel_s\":%.6f,\
       \"speedup_at_4\":%.3f},\n\
      \  \"identical\": %b,\n\
      \  \"thin_rounds_profile\": %s\n\
       }\n"
      prof.Workload.Appgen.app_name prof.Workload.Appgen.n_modules
      Pipeline.default_config.outline_rounds
      (Domain.recommended_domain_count ())
      full_wall full.Pipeline.binary_size
      (String.concat ",\n"
         (List.map
            (fun (w, wall, r) ->
              Printf.sprintf
                "    {\"workers\":%d,\"wall_s\":%.6f,\"binary_size\":%d,\
                 \"modeled_speedup\":%.3f}"
                w wall r.Pipeline.binary_size (modeled w))
            runs))
      serial_s parallel_s (modeled 4) identical
      (Thinwpo.Engine.Report.to_json thin1.Pipeline.thin_profile)
  in
  let oc = open_out "BENCH_thinwpo.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_thinwpo.json\n";
  if not identical then
    failwith "thinwpo: output depends on the worker count";
  if thin_size * 100 > full.Pipeline.binary_size * 101 then
    failwith
      (Printf.sprintf "thinwpo: thin image %d B is over 1%% past full WPO %d B"
         thin_size full.Pipeline.binary_size);
  match min_speedup with
  | Some bar ->
    if modeled 4 < bar then
      failwith
        (Printf.sprintf
           "thinwpo: modeled speedup at 4 workers %.2fx is below the %.1fx bar"
           (modeled 4) bar)
    else
      Printf.printf "modeled speedup at 4 workers %.2fx clears the %.1fx bar\n"
        (modeled 4) bar
  | None -> ()

let thinwpo () =
  thinwpo_impl ~profile:Workload.Appgen.small ~mult:10
    ~workers_list:[ 1; 2; 4; 8 ] ~min_speedup:(Some 2.5) ()

(* CI smoke: a 2x app and a two-point sweep, identity and size assertions
   only — small enough for every push. *)
let thinwpo_smoke () =
  thinwpo_impl ~profile:Workload.Appgen.small ~mult:2 ~workers_list:[ 1; 2 ]
    ~min_speedup:None ()

(* -------------------------------------------------------- serve bench *)

(* [bench serve]: replay a seeded multi-week Workload.Commits stream twice
   — cold (a fresh from-scratch Pipeline.build_sources per commit) and
   warm (one persistent Serve.Server keeping the incremental engine,
   front-end caches and result cache across requests) — and report
   builds/sec and p50/p99 latency for both.  Two hard gates: every served
   image must be byte-identical to the scratch build of the same commit,
   and warm replay must be strictly faster than cold.  Emits
   BENCH_serve.json. *)
let serve_impl ~mult ~weeks ~commits_per_week () =
  let profile = Workload.Appgen.small in
  let prof =
    if mult > 1 then Workload.Appgen.scaled ~mult profile else profile
  in
  title
    (Printf.sprintf "Serve replay: %s, %d weeks x %d commits"
       prof.Workload.Appgen.app_name weeks commits_per_week);
  let commits =
    Workload.Commits.stream ~profile:prof ~weeks ~commits_per_week ()
  in
  let spec = "dce,outline(rounds=3)" in
  let cfg = cfg_of_passes spec in
  let cold =
    List.map
      (fun (c : Workload.Commits.commit) ->
        let t0 = Unix.gettimeofday () in
        let r = ok_exn (Pipeline.build_sources ~config:cfg c.c_sources) in
        let img = Machine.Asm_printer.to_source r.Pipeline.program in
        let dt = Unix.gettimeofday () -. t0 in
        (dt, img))
      commits
  in
  let server = Serve.Server.create () in
  let warm =
    List.map
      (fun (c : Workload.Commits.commit) ->
        let req =
          Serve.Protocol.print_request
            (Serve.Protocol.Build
               {
                 br_id = Printf.sprintf "c%d" c.Workload.Commits.c_index;
                 br_app = prof.Workload.Appgen.app_name;
                 br_mode = "wp";
                 br_workers = 0;
                 br_passes = Some spec;
                 br_want_image = true;
                 br_source = Serve.Protocol.Inline c.Workload.Commits.c_sources;
               })
        in
        let t0 = Unix.gettimeofday () in
        let payload, _ = Serve.Server.handle server req in
        let dt = Unix.gettimeofday () -. t0 in
        match Serve.Protocol.parse_response payload with
        | Ok (Serve.Protocol.Built b) -> (dt, b)
        | Ok (Serve.Protocol.Error_reply { e_message; _ }) ->
          failwith ("serve: " ^ e_message)
        | _ -> failwith "serve: unexpected response")
      commits
  in
  let rows = List.combine commits (List.combine cold warm) in
  let mismatches =
    List.filter
      (fun (_, ((_, cold_img), (_, b))) ->
        b.Serve.Protocol.b_image <> Some cold_img)
      rows
  in
  print_string
    (table
       ~header:[ "commit"; "week"; "dirty"; "cold s"; "warm s"; "cache" ]
       (List.map
          (fun ((c : Workload.Commits.commit), ((cdt, _), (wdt, b))) ->
            [
              string_of_int c.c_index;
              string_of_int c.c_week;
              (match c.c_dirty with
              | [] -> "(retry)"
              | ms -> String.concat " " ms);
              Printf.sprintf "%.3f" cdt;
              Printf.sprintf "%.3f" wdt;
              (if b.Serve.Protocol.b_cache_hit then "hit" else "miss");
            ])
          rows));
  let cold_lat = List.map fst cold and warm_lat = List.map fst warm in
  let total = List.fold_left ( +. ) 0. in
  let cold_total = total cold_lat and warm_total = total warm_lat in
  let n = List.length commits in
  let bps t = float_of_int n /. t in
  let pct p l = Repro_stats.Percentile.percentile p l in
  let hits =
    List.length (List.filter (fun (_, b) -> b.Serve.Protocol.b_cache_hit) warm)
  in
  Printf.printf
    "cold: %.2f builds/s (p50 %.3fs, p99 %.3fs)   warm: %.2f builds/s (p50 \
     %.3fs, p99 %.3fs)   speedup %.2fx   cache hits %d/%d   identical \
     images: %b\n"
    (bps cold_total) (pct 50. cold_lat) (pct 99. cold_lat) (bps warm_total)
    (pct 50. warm_lat) (pct 99. warm_lat) (cold_total /. warm_total) hits n
    (mismatches = []);
  let json =
    Printf.sprintf
      "{\n\
      \  \"app\": \"%s\",\n\
      \  \"modules\": %d,\n\
      \  \"weeks\": %d,\n\
      \  \"commits\": %d,\n\
      \  \"spec\": \"%s\",\n\
      \  \"cold\": {\"total_s\":%.6f,\"builds_per_s\":%.3f,\"p50_s\":%.6f,\
       \"p99_s\":%.6f},\n\
      \  \"warm\": {\"total_s\":%.6f,\"builds_per_s\":%.3f,\"p50_s\":%.6f,\
       \"p99_s\":%.6f},\n\
      \  \"speedup\": %.3f,\n\
      \  \"cache_hits\": %d,\n\
      \  \"identical\": %b,\n\
      \  \"per_commit\": [\n\
       %s\n\
      \  ]\n\
       }\n"
      prof.Workload.Appgen.app_name prof.Workload.Appgen.n_modules weeks n
      spec cold_total (bps cold_total) (pct 50. cold_lat) (pct 99. cold_lat)
      warm_total (bps warm_total) (pct 50. warm_lat) (pct 99. warm_lat)
      (cold_total /. warm_total) hits
      (mismatches = [])
      (String.concat ",\n"
         (List.map
            (fun ((c : Workload.Commits.commit), ((cdt, _), (wdt, b))) ->
              Printf.sprintf
                "    {\"commit\":%d,\"week\":%d,\"dirty\":%d,\
                 \"cold_s\":%.6f,\"warm_s\":%.6f,\"hit\":%b}"
                c.c_index c.c_week
                (List.length c.c_dirty)
                cdt wdt b.Serve.Protocol.b_cache_hit)
            rows))
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_serve.json\n";
  (match mismatches with
  | ((c : Workload.Commits.commit), _) :: _ ->
    failwith
      (Printf.sprintf
         "serve: image served for commit %d is not byte-identical to a \
          from-scratch build"
         c.c_index)
  | [] -> ());
  if warm_total >= cold_total then
    failwith
      (Printf.sprintf
         "serve: warm replay (%.2fs) is not strictly faster than cold \
          rebuilds (%.2fs)"
         warm_total cold_total)

let serve_bench () = serve_impl ~mult:3 ~weeks:4 ~commits_per_week:6 ()

(* CI smoke: same gates at reduced scale — small enough for every push. *)
let serve_smoke () = serve_impl ~mult:1 ~weeks:2 ~commits_per_week:4 ()

(* -------------------------------------------------------- layout bench *)

(* One definition of the layout measurement columns: display header, JSON
   key, and how one interp result contributes.  The per-device table, the
   totals table, and the JSON device rows all render from this list, so
   adding a column is one entry here rather than three format strings. *)
type layout_col = {
  lc_head : string;   (* table column header *)
  lc_key : string;    (* JSON field name *)
  lc_of_run : Perfsim.Interp.result -> int;
  lc_total : bool;    (* include in the cross-device totals table *)
}

let layout_cols =
  [
    { lc_head = "cycles"; lc_key = "cycles";
      lc_of_run = (fun r -> r.Perfsim.Interp.cycles); lc_total = true };
    { lc_head = "icache miss"; lc_key = "icache_misses";
      lc_of_run = (fun r -> r.Perfsim.Interp.icache_misses); lc_total = true };
    { lc_head = "itlb miss"; lc_key = "itlb_misses";
      lc_of_run = (fun r -> r.Perfsim.Interp.itlb_misses); lc_total = true };
    { lc_head = "data pages"; lc_key = "data_pages";
      lc_of_run = (fun r -> r.Perfsim.Interp.data_pages_touched);
      lc_total = false };
    { lc_head = "cold pages"; lc_key = "cold_start_pages";
      lc_of_run = (fun r -> r.Perfsim.Interp.cold_start_pages);
      lc_total = true };
    { lc_head = "cold cost"; lc_key = "cold_start_cost";
      lc_of_run = (fun r -> r.Perfsim.Interp.cold_start_cost);
      lc_total = false };
  ]

let layout_col_index key =
  let rec go i = function
    | [] -> invalid_arg ("layout_col_index: " ^ key)
    | c :: _ when c.lc_key = key -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 layout_cols

(* Profile-guided layout comparison: Append vs caller-affinity vs the
   lib/pgo strategies (order-file, C3, balanced partitioning, bp-compress)
   across the device matrix.  Every strategy is pure reordering, so the
   interp differential (exit value + printed output per entry) is a hard
   assertion; on uber_rider so is the acceptance bar — some profile-guided
   strategy must beat caller-affinity on iTLB misses while staying no
   worse than Append on icache misses, bp-compress must strictly beat
   Append on estimated compressed size while staying within 5% of
   balanced on icache misses, and no startup-ordered strategy may fault
   more cold-start pages than Append.  A w-sweep shows the
   locality/compression trade-off curve.  Emits BENCH_layout.json. *)
let layout_bench_impl ~assert_wins app =
  let app_name = app.Workload.Appgen.app_name in
  title (Printf.sprintf "Layout: function-placement strategies (%s)" app_name);
  let mods = ok_exn (Workload.Appgen.generate_modules app) in
  let r = build mods in
  let program = r.Pipeline.program in
  let entries = "main" :: Workload.Appgen.span_entries in
  let args_for e = if e = "main" then [] else [ 1 ] in
  let profile = Pgo.Collect.collect ~args_for ~workload:app_name ~entries program in
  let caller_affinity_order =
    List.map
      (fun (f : Machine.Mfunc.t) -> f.Machine.Mfunc.name)
      (Outcore.Layout.optimize program).Machine.Program.funcs
  in
  (* Stitch is the one strategy that rewrites the program (cold blocks
     split to __text_cold, branches elided/materialized), so it carries
     its own program alongside its chain order. *)
  let stitch_program = Blocklayout.split_program ~profile program in
  (match Machine.Program.validate stitch_program with
  | Ok () -> ()
  | Error e -> failwith ("layout_bench: stitch split invalid: " ^ e));
  let strategies =
    [
      ("append", program, None);
      ("caller-affinity", program, Some caller_affinity_order);
      ("order-file", program, Some (Pgo.Order.compute `Order_file profile program));
      ("c3", program, Some (Pgo.Order.compute `C3 profile program));
      ("balanced", program, Some (Pgo.Order.compute `Balanced profile program));
      ( "bp-compress",
        program,
        Some
          (Pgo.Order.compute (`Bp_compress Pgo.Order.default_w) profile
             program) );
      ( "stitch",
        stitch_program,
        Some (Blocklayout.stitch_order ~profile stitch_program) );
    ]
  in
  (* The differential oracle: every strategy must reproduce the Append
     run's exit value and output on every entry. *)
  let run ?config ?order prog entry =
    match Perfsim.Interp.run ?config ?order ~args:(args_for entry) ~entry prog with
    | Ok res -> res
    | Error e ->
      failwith
        (Printf.sprintf "layout_bench: %s: %s" entry
           (Perfsim.Interp.error_to_string e))
  in
  let reference =
    List.map
      (fun entry ->
        let res = run program entry in
        (entry, (res.Perfsim.Interp.exit_value, res.output)))
      entries
  in
  let measure (sname, prog, order) =
    List.iter
      (fun entry ->
        let res = run ?order prog entry in
        let ev, out = List.assoc entry reference in
        if res.Perfsim.Interp.exit_value <> ev || res.output <> out then
          failwith
            (Printf.sprintf
               "layout_bench: %s diverges from append on %s (exit %d vs %d)"
               sname entry res.Perfsim.Interp.exit_value ev))
      entries;
    let per_device =
      List.map
        (fun (device : Perfsim.Device.t) ->
          let config = { Perfsim.Interp.default_config with device } in
          let acc = Array.make (List.length layout_cols) 0 in
          List.iter
            (fun entry ->
              let res = run ~config ?order prog entry in
              List.iteri (fun i c -> acc.(i) <- acc.(i) + c.lc_of_run res)
                layout_cols)
            entries;
          (device.Perfsim.Device.name, acc))
        Perfsim.Device.devices
    in
    (* One link per strategy: the placement-faithful compressed stream
       (hot chains in placement order, then the cold region) plus the
       hot-text/total-text split. *)
    let layout = Linker.link ?order prog in
    let compressed =
      (Lazy.force layout.Linker.compressed).Linker.Compress.compressed_bytes
    in
    ( sname,
      compressed,
      layout.Linker.hot_text_size,
      layout.Linker.text_size,
      per_device )
  in
  let results = List.map measure strategies in
  print_string
    (table
       ~header:("strategy" :: "device" :: List.map (fun c -> c.lc_head) layout_cols)
       (List.concat_map
          (fun (sname, _, _, _, per_device) ->
            List.map
              (fun (d, acc) ->
                sname :: d
                :: List.map string_of_int (Array.to_list acc))
              per_device)
          results));
  let find_result sname = List.find (fun (s, _, _, _, _) -> s = sname) results in
  let total key sname =
    let i = layout_col_index key in
    let _, _, _, _, per_device = find_result sname in
    List.fold_left (fun a (_, acc) -> a + acc.(i)) 0 per_device
  in
  let compressed_of sname =
    let _, c, _, _, _ = find_result sname in
    c
  in
  let hot_text_of sname =
    let _, _, h, _, _ = find_result sname in
    h
  in
  let text_of sname =
    let _, _, _, t, _ = find_result sname in
    t
  in
  title "Totals across the device matrix";
  let total_cols = List.filter (fun c -> c.lc_total) layout_cols in
  print_string
    (table
       ~header:
         ("strategy"
         :: List.map (fun c -> c.lc_head) total_cols
         @ [ "compressed B"; "hot text B"; "text B" ])
       (List.map
          (fun (sname, compressed, hot_text, text, _) ->
            (sname
            :: List.map
                 (fun c -> string_of_int (total c.lc_key sname))
                 total_cols)
            @ [ string_of_int compressed; string_of_int hot_text;
                string_of_int text ])
          results));
  let icache_of = total "icache_misses" in
  let itlb_of = total "itlb_misses" in
  let cold_of = total "cold_start_pages" in
  let append_ic = icache_of "append" in
  let ca_itlb = itlb_of "caller-affinity" in
  let accepted =
    List.filter
      (fun s -> itlb_of s < ca_itlb && icache_of s <= append_ic)
      [ "c3"; "balanced" ]
  in
  Printf.printf
    "strategies beating caller-affinity on iTLB and matching append on icache: %s\n"
    (if accepted = [] then "(none)" else String.concat ", " accepted);
  (* The trade-off curve: sweep bp-compress's weight from pure locality
     (w=0, the balanced order itself) to pure compression (w=1), measured
     on the default device. *)
  let sweep_ws = [ 0.0; 0.25; 0.5; 0.75; 1.0 ] in
  let sweep =
    List.map
      (fun w ->
        let order = Pgo.Order.bp_compress ~w profile program in
        let compressed =
          (Linker.compress_estimate ~order program)
            .Linker.Compress.compressed_bytes
        in
        let ic = ref 0 and cold = ref 0 in
        List.iter
          (fun entry ->
            let res = run ~order program entry in
            ic := !ic + res.Perfsim.Interp.icache_misses;
            cold := !cold + res.Perfsim.Interp.cold_start_pages)
          entries;
        (w, compressed, !ic, !cold))
      sweep_ws
  in
  title "bp-compress w-sweep (default device): locality vs compressed size";
  print_string
    (table
       ~header:[ "w"; "compressed B"; "icache miss"; "cold pages" ]
       (List.map
          (fun (w, compressed, ic, cold) ->
            [ Printf.sprintf "%g" w; string_of_int compressed;
              string_of_int ic; string_of_int cold ])
          sweep));
  let json_strategy (sname, compressed, hot_text, text, per_device) =
    Printf.sprintf
      "    {\"strategy\":\"%s\",\"compressed_size\":%d,\"hot_text_bytes\":%d,\
       \"text_size\":%d,\"devices\":[\n\
       %s\n\
      \    ]}"
      sname compressed hot_text text
      (String.concat ",\n"
         (List.map
            (fun (d, acc) ->
              Printf.sprintf "      {\"device\":\"%s\",%s}" d
                (String.concat ","
                   (List.mapi
                      (fun i c ->
                        Printf.sprintf "\"%s\":%d" c.lc_key acc.(i))
                      layout_cols)))
            per_device))
  in
  let json_sweep =
    String.concat ",\n"
      (List.map
         (fun (w, compressed, ic, cold) ->
           Printf.sprintf
             "    {\"w\":%g,\"compressed_size\":%d,\"icache_misses\":%d,\
              \"cold_start_pages\":%d}"
             w compressed ic cold)
         sweep)
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"app\": \"%s\",\n\
      \  \"entries\": %d,\n\
      \  \"strategies\": [\n\
       %s\n\
      \  ],\n\
      \  \"w_sweep\": [\n\
       %s\n\
      \  ],\n\
      \  \"identical\": true,\n\
      \  \"accepted\": [%s]\n\
       }\n"
      app_name (List.length entries)
      (String.concat ",\n" (List.map json_strategy results))
      json_sweep
      (String.concat ", " (List.map (Printf.sprintf "\"%s\"") accepted))
  in
  let oc = open_out "BENCH_layout.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_layout.json\n";
  if assert_wins then begin
    if accepted = [] then
      failwith
        "layout_bench: no profile-guided strategy beats caller-affinity on \
         iTLB while matching append on icache";
    let bpc = compressed_of "bp-compress" and apc = compressed_of "append" in
    if bpc >= apc then
      failwith
        (Printf.sprintf
           "layout_bench: bp-compress does not beat append on estimated \
            compressed size (%d vs %d bytes)"
           bpc apc);
    let bp_ic = icache_of "bp-compress" and bal_ic = icache_of "balanced" in
    if bp_ic * 100 > bal_ic * 105 then
      failwith
        (Printf.sprintf
           "layout_bench: bp-compress icache misses (%d) are more than 5%% \
            past balanced (%d)"
           bp_ic bal_ic);
    let append_cold = cold_of "append" in
    List.iter
      (fun s ->
        if cold_of s > append_cold then
          failwith
            (Printf.sprintf
               "layout_bench: %s faults more cold-start pages than append \
                (%d vs %d)"
               s (cold_of s) append_cold))
      [ "order-file"; "c3"; "balanced"; "bp-compress"; "stitch" ];
    (* Block-granularity gates: splitting must actually move bytes out of
       hot text, and the stitched placement must beat append on both
       startup metrics and stay at least as good as bp-compress on
       cold-start pages (the block-level win function ordering cannot
       reach). *)
    if hot_text_of "stitch" >= text_of "stitch" then
      failwith
        (Printf.sprintf
           "layout_bench: stitch hot text (%d) is not strictly smaller than \
            total text (%d) — no blocks were split"
           (hot_text_of "stitch") (text_of "stitch"));
    if cold_of "stitch" >= append_cold then
      failwith
        (Printf.sprintf
           "layout_bench: stitch does not reduce cold-start pages vs append \
            (%d vs %d)"
           (cold_of "stitch") append_cold);
    if itlb_of "stitch" >= itlb_of "append" then
      failwith
        (Printf.sprintf
           "layout_bench: stitch does not reduce iTLB misses vs append \
            (%d vs %d)"
           (itlb_of "stitch") (itlb_of "append"));
    if cold_of "stitch" > cold_of "bp-compress" then
      failwith
        (Printf.sprintf
           "layout_bench: stitch faults more cold-start pages than \
            bp-compress (%d vs %d)"
           (cold_of "stitch") (cold_of "bp-compress"))
  end

let layout_bench () = layout_bench_impl ~assert_wins:true Workload.Appgen.uber_rider
let layout_bench_small () = layout_bench_impl ~assert_wins:false Workload.Appgen.small

(* ----------------------------------------------------------------- E12 *)

let apps () =
  title "SVII-E1: generality across apps (5 rounds, whole-program vs per-module)";
  let rows =
    List.map
      (fun (profile, paper) ->
        let mods = ok_exn (Workload.Appgen.generate_modules profile) in
        let pm = build ~config:per_module_cfg mods in
        let wp = build mods in
        [
          profile.Workload.Appgen.app_name;
          string_of_int pm.Pipeline.code_size;
          string_of_int wp.Pipeline.code_size;
          Printf.sprintf "%.1f%%" (pct pm.Pipeline.code_size wp.Pipeline.code_size);
          paper;
        ])
      [
        (Workload.Appgen.uber_rider, "23%");
        (Workload.Appgen.uber_driver, "17%");
        (Workload.Appgen.uber_eats, "19%");
      ]
  in
  print_string
    (table ~header:[ "app"; "baseline code B"; "optimized code B"; "saving"; "paper" ] rows)

(* ----------------------------------------------------------------- E13 *)

let foreign () =
  title "SVII-E2: non-iOS programs - clang-like and kernel-like shapes";
  List.iter
    (fun (name, prog, paper) ->
      let base = Machine.Program.code_size_bytes prog in
      Printf.printf "\n%s: %d functions, %d insns, %d code bytes (paper saving: %s)\n"
        name
        (List.length prog.Machine.Program.funcs)
        (Machine.Program.insn_count prog) base paper;
      let rows = ref [] in
      List.iter
        (fun rounds ->
          let p, stats = Outcore.Repeat.run ~rounds prog in
          let cum = Outcore.Repeat.cumulative stats in
          let last =
            match List.rev cum with
            | s :: _ -> s
            | [] ->
              { Outcore.Outliner.sequences_outlined = 0; functions_created = 0;
                outlined_bytes = 0; bytes_saved = 0 }
          in
          rows :=
            [
              string_of_int rounds;
              string_of_int last.Outcore.Outliner.sequences_outlined;
              string_of_int last.Outcore.Outliner.functions_created;
              string_of_int (Machine.Program.code_size_bytes p);
              Printf.sprintf "%.1f%%" (pct base (Machine.Program.code_size_bytes p));
            ]
            :: !rows)
        [ 1; 2; 3; 4; 5 ];
      print_string
        (table
           ~header:[ "rounds"; "#seq outlined"; "#funcs created"; "code B"; "saving" ]
           (List.rev !rows)))
    [
      ("clang-like", Workload.Foreign.clang_like (), "25%");
      ("kernel-like", Workload.Foreign.kernel_like (), "14%");
    ]

(* ----------------------------------------------------------------- E16 *)

let datalayout () =
  title "SVI-3: llvm-link data ordering - the production regression and its fix";
  let mods = Lazy.force rider_modules in
  let variants =
    [
      ("no outlining, module-preserving",
       { Pipeline.default_config with outline_rounds = 0 });
      ("no outlining, interleaved",
       { Pipeline.default_config with outline_rounds = 0; data_order = Link.Interleaved });
      ("5 rounds, module-preserving", Pipeline.default_config);
      ("5 rounds, interleaved",
       { Pipeline.default_config with data_order = Link.Interleaved });
    ]
  in
  let spans = [ "span2"; "span5"; "span9" ] in
  let rows =
    List.map
      (fun (name, config) ->
        let r = build ~config mods in
        let cycles = ref 0 and faults = ref 0 and pages = ref 0 in
        List.iter
          (fun span ->
            match
              Perfsim.Interp.run ~config:Perfsim.Interp.default_config ~args:[ 1 ]
                ~entry:span r.Pipeline.program
            with
            | Ok res ->
              cycles := !cycles + res.cycles;
              faults := !faults + res.data_fault_cycles;
              pages := !pages + res.data_pages_touched
            | Error e -> failwith (Perfsim.Interp.error_to_string e))
          spans;
        [ name; string_of_int !pages; string_of_int !faults; string_of_int !cycles ])
      variants
  in
  print_string
    (table
       ~header:[ "configuration"; "data pages"; "fault cycles"; "total cycles" ]
       rows);
  print_endline
    "[paper: ~10% regression from interleaving, present with or without outlining;\n\
    \ fixed by preserving per-module data order in llvm-link]"

(* --------------------------------------------------------------- ablation *)

let ablate () =
  title "Ablation: outlining call strategies (whole program, 5 rounds)";
  let prog = (Lazy.force rider_unoutlined).Pipeline.program in
  let base = Machine.Program.code_size_bytes prog in
  let variant ?(pre = fun p -> p) name options =
    let p, _ = Outcore.Repeat.run ~options ~rounds:5 (pre prog) in
    [ name; string_of_int (Machine.Program.code_size_bytes p);
      Printf.sprintf "%.1f%%" (pct base (Machine.Program.code_size_bytes p)) ]
  in
  let d = Outcore.Outliner.default_options in
  let rows =
    [
      variant "all strategies" d;
      variant "no save-LR sites" { d with allow_save_lr = false };
      variant "no tail-call thunks" { d with allow_thunk = false };
      variant "no ret-ending patterns" { d with allow_ret = false };
      variant "min pattern length 3" { d with min_length = 3 };
      variant ~pre:(fun p -> fst (Outcore.Canonicalize.run p))
        "+ commutative canonicalization (future work 1)" d;
    ]
  in
  print_string (table ~header:[ "variant"; "code B"; "saving vs unoutlined" ] rows);
  (* Future work (2): deterministic vs randomized register assignment. *)
  title "Ablation: register assignment vs outlining (future work 2)";
  let mods = Lazy.force rider_modules in
  let merged =
    match Link.link ~flag_semantics:Link.Attributes ~name:"w" mods with
    | Ok m -> m
    | Error e -> failwith (Link.error_to_string e)
  in
  let rows =
    List.map
      (fun (name, seed) ->
        let prog =
          match seed with
          | None -> Codegen.compile_modul merged
          | Some s -> Codegen.compile_modul ~regalloc_seed:s merged
        in
        let b = Machine.Program.code_size_bytes prog in
        let p, _ = Outcore.Repeat.run ~rounds:5 prog in
        let a = Machine.Program.code_size_bytes p in
        [ name; string_of_int b; string_of_int a; Printf.sprintf "%.1f%%" (pct b a) ])
      [ ("deterministic allocation", None); ("randomized pools (seed 1)", Some 1);
        ("randomized pools (seed 2)", Some 2) ]
  in
  print_string
    (table ~header:[ "register assignment"; "code B"; "outlined B"; "saving" ] rows);
  print_endline
    "[randomized assignment destroys cross-function repetition: the outliner\n\
    \ recovers less — the interaction the paper's future work (2) points at]";
  (* Future work (3): outlined-code placement. *)
  title "Ablation: outlined-function placement (future work 3)";
  let span = "span8" in
  let base_prog = (Lazy.force rider_baseline).Pipeline.program in
  let rows =
    List.map
      (fun (name, layout) ->
        let r =
          build ~config:{ Pipeline.default_config with outlined_layout = layout }
            (Lazy.force rider_modules)
        in
        let cfg = Perfsim.Interp.default_config in
        match
          ( Perfsim.Interp.run ~config:cfg ~args:[ 1 ] ~entry:span base_prog,
            Perfsim.Interp.run ~config:cfg ~args:[ 1 ] ~entry:span r.Pipeline.program )
        with
        | Ok b, Ok o ->
          [ name;
            Printf.sprintf "%.3f" (float_of_int o.cycles /. float_of_int b.cycles);
            string_of_int o.icache_misses; string_of_int o.itlb_misses ]
        | Error e, _ | _, Error e -> failwith (Perfsim.Interp.error_to_string e))
      [ ("dense appended region (LLVM)", `Append);
        ("caller-affinity placement", `Caller_affinity) ]
  in
  print_string
    (table
       ~header:[ "placement"; span ^ " ratio vs baseline"; "icache misses"; "itlb misses" ]
       rows);
  print_endline
    "[negative result: shared outlined helpers want one dense hot region;\n\
    \ scattering them next to single callers inflates iTLB misses]"

(* ------------------------------------------------------------------ micro *)

let micro () =
  title "Micro-benchmarks (Bechamel): core data structures and passes";
  let prog = (Lazy.force rider_unoutlined).Pipeline.program in
  let seqs =
    let imap = ref 0 in
    let tbl = Hashtbl.create 1024 in
    List.filteri (fun i _ -> i < 400) prog.Machine.Program.funcs
    |> List.concat_map (fun (f : Machine.Mfunc.t) ->
           List.map
             (fun (b : Machine.Block.t) ->
               Array.map
                 (fun insn ->
                   match Hashtbl.find_opt tbl insn with
                   | Some id -> id
                   | None ->
                     incr imap;
                     Hashtbl.replace tbl insn !imap;
                     !imap)
                 b.body)
             f.blocks)
  in
  let small_seqs = List.filteri (fun i _ -> i < 60) seqs in
  let open Bechamel in
  let tests =
    [
      Test.make ~name:"suffix-tree build (app sample)" (Staged.stage (fun () ->
          ignore (Sufftree.Suffix_tree.build seqs)));
      Test.make ~name:"suffix-tree repeats (app sample)" (Staged.stage (fun () ->
          ignore (Sufftree.Suffix_tree.repeats (Sufftree.Suffix_tree.build seqs))));
      Test.make ~name:"naive repeats (small sample)" (Staged.stage (fun () ->
          ignore (Sufftree.Naive.all_repeated ~min_length:2 small_seqs)));
      Test.make ~name:"one outliner round (whole app)" (Staged.stage (fun () ->
          ignore (Outcore.Outliner.run_round Outcore.Outliner.default_options prog)));
      Test.make ~name:"liveness (all functions)" (Staged.stage (fun () ->
          List.iter
            (fun f -> ignore (Machine.Liveness.compute f))
            prog.Machine.Program.funcs));
    ]
  in
  let rows = ref [] in
  List.iter
    (fun t ->
      let instances = [ Toolkit.Instance.monotonic_clock ] in
      let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
      let raw = Benchmark.all cfg instances t in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
          Toolkit.Instance.monotonic_clock raw
      in
      Hashtbl.iter
        (fun name result ->
          let est =
            match Analyze.OLS.estimates result with
            | Some [ est ] -> Printf.sprintf "%.0f" est
            | Some _ | None -> "(no estimate)"
          in
          rows := [ name; est ] :: !rows)
        results)
    tests;
  print_string (table ~header:[ "benchmark"; "ns/run" ] (List.rev !rows))

(* ------------------------------------------------------------------ main *)

let experiments =
  [
    ("fig1", fig1);
    ("table1", table1);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig11", fig11);
    ("fig12", fig12);
    ("table2", table2);
    ("fig13", fig13);
    ("table3", table3);
    ("table4", table4);
    ("buildtime", buildtime);
    ("outline_bench", outline_bench);
    ("thinwpo", thinwpo);
    ("thinwpo_smoke", thinwpo_smoke);
    ("serve", serve_bench);
    ("serve_smoke", serve_smoke);
    ("layout_bench", layout_bench);
    ("layout_bench_small", layout_bench_small);
    ("apps", apps);
    ("foreign", foreign);
    ("datalayout", datalayout);
    ("ablate", ablate);
    ("micro", micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let chosen =
    match args with
    | [] -> List.map fst experiments
    | args -> args
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
        let t0 = Unix.gettimeofday () in
        f ();
        Printf.printf "[%s done in %.1fs]\n%!" name (Unix.gettimeofday () -. t0)
      | None ->
        Printf.printf "unknown experiment %S; available: %s\n" name
          (String.concat " " (List.map fst experiments)))
    chosen
